package engine

// Resource governance at the serving boundary. Three mechanisms compose
// here, all opt-in and all zero-cost when disabled:
//
//   - Budgets (Budget, Options.Budget, the *Budget entry points) bound one
//     request: a wall-clock deadline plus caps on result rows, derived
//     tuples and fixpoint rounds, enforced inside the compiled executors by
//     amortized guards (datalog.Limits). A tripped budget returns a typed
//     error — ErrCanceled or ErrBudgetExceeded — with partial-progress
//     fixpoint stats attached (QueryError) where they exist.
//
//   - Admission control (Options.MaxConcurrent) bounds how many requests
//     execute at once: a weighted semaphore with a bounded FIFO wait queue.
//     Requests beyond the queue bound — or queued past Options.QueueTimeout
//     — are shed with an OverloadedError carrying a retry-after hint, so
//     overload turns into fast, typed refusals instead of goroutine pileup.
//
//   - Panic isolation: every public execution entry point recovers panics
//     from plan evaluation and maintenance into a typed InternalError
//     (matching ErrInternal), so one poisoned plan or malformed tuple
//     cannot take down a serving process. Invariant panics still carry
//     their message and stack in the error for diagnosis.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/ivm"
	"repro/internal/storage"
)

// ErrCanceled reports that a request's context was canceled (or its
// deadline expired) mid-evaluation. It aliases datalog.ErrCanceled so
// errors.Is matches across layers.
var ErrCanceled = datalog.ErrCanceled

// ErrBudgetExceeded reports that a request exhausted an explicit resource
// budget (Budget). It aliases datalog.ErrBudgetExceeded.
var ErrBudgetExceeded = datalog.ErrBudgetExceeded

// ErrOverloaded reports that admission control shed the request: the
// engine was at MaxConcurrent with a full wait queue, or the request
// queued past QueueTimeout. Match with errors.Is; the concrete error is an
// *OverloadedError carrying a retry-after hint.
var ErrOverloaded = errors.New("engine: overloaded")

// ErrInternal reports that an evaluation panicked and the engine boundary
// converted the panic into an error. Match with errors.Is; the concrete
// error is an *InternalError carrying the panic value and stack.
var ErrInternal = errors.New("engine: internal error")

// ErrArityMismatch reports a caller-supplied arity error at the serving
// boundary: a prepared query executed with the wrong number of arguments,
// or a parameterized plan passed to Eval. Match with errors.Is.
var ErrArityMismatch = errors.New("engine: arity mismatch")

// ErrDurability reports a durable-storage write failure. The store is
// fail-stop: once a WAL append fails, every later mutation returns this
// error while reads keep serving — the on-disk state stays a consistent
// prefix of the acknowledged history. Match with errors.Is.
var ErrDurability = errors.New("engine: durable storage failure")

// OverloadedError is the concrete shed error: errors.Is(err, ErrOverloaded)
// matches it, and RetryAfter hints when capacity is likely to free up
// (current queue length times the engine's average execution time).
type OverloadedError struct {
	// RetryAfter estimates how long until a retried request would be
	// admitted. A hint, not a guarantee.
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("engine: overloaded, retry after %v", e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// InternalError is the concrete panic-isolation error:
// errors.Is(err, ErrInternal) matches it, and the panic value plus stack
// trace are preserved for diagnosis.
type InternalError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the stack trace captured at recovery.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("engine: internal error: %v", e.Value)
}

// Is makes errors.Is(err, ErrInternal) match.
func (e *InternalError) Is(target error) bool { return target == ErrInternal }

// QueryError wraps an evaluation failure with the partial-progress fixpoint
// stats at the moment the run stopped — how many rounds ran and how many
// tuples were derived before the deadline or budget tripped. Unwrap exposes
// the cause, so errors.Is(err, ErrCanceled) etc. keep working.
type QueryError struct {
	// Err is the underlying failure (wraps ErrCanceled or
	// ErrBudgetExceeded).
	Err error
	// Stats is the partial progress of the fixpoint when it stopped.
	Stats datalog.FixpointStats
}

func (e *QueryError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/errors.As.
func (e *QueryError) Unwrap() error { return e.Err }

// Budget bounds one request. The zero value means unlimited; any subset of
// fields may be set. Options.Budget applies a default budget to every
// request; the *Budget entry points override it per call.
type Budget struct {
	// Deadline bounds the request's wall-clock time. The request's context
	// is given a timeout of this duration; evaluation observes expiry
	// within one guard interval (~1k candidate rows) or one fixpoint round
	// and returns ErrCanceled.
	Deadline time.Duration
	// MaxResultRows bounds the number of answer rows. Exceeding it returns
	// ErrBudgetExceeded.
	MaxResultRows int
	// MaxDerivedTuples bounds the derived-tuple count of inverse-rules
	// fixpoints and update-batch propagation.
	MaxDerivedTuples int
	// MaxFixpointRounds bounds the number of semi-naive rounds of a
	// fixpoint or propagation.
	MaxFixpointRounds int
}

func (b Budget) zero() bool {
	return b.Deadline <= 0 && b.MaxResultRows <= 0 && b.MaxDerivedTuples <= 0 && b.MaxFixpointRounds <= 0
}

// limits translates the budget to the executor-level limits.
func (b Budget) limits() datalog.Limits {
	return datalog.Limits{
		MaxRows:    b.MaxResultRows,
		MaxDerived: b.MaxDerivedTuples,
		MaxRounds:  b.MaxFixpointRounds,
	}
}

// apply attaches the budget's deadline to ctx. The second return is the
// cancel function to defer, nil when no deadline applies.
func (b Budget) apply(ctx context.Context) (context.Context, context.CancelFunc) {
	if b.Deadline <= 0 {
		return ctx, nil
	}
	return context.WithTimeout(ctx, b.Deadline)
}

// AdmissionStats counts admission-control outcomes.
type AdmissionStats struct {
	// Admitted counts requests that acquired capacity (immediately or
	// after queueing).
	Admitted uint64
	// Queued counts requests that had to wait for capacity.
	Queued uint64
	// Shed counts requests refused immediately because the wait queue was
	// full.
	Shed uint64
	// TimedOut counts queued requests that gave up after QueueTimeout.
	TimedOut uint64
	// Canceled counts queued requests whose context fired while waiting.
	Canceled uint64
}

// waiter is one request parked in the admission queue.
type waiter struct {
	weight int
	ready  chan struct{} // closed when capacity is granted
}

// admitter is a weighted semaphore with a bounded FIFO wait queue. A nil
// *admitter admits everything for free — the engine only allocates one when
// Options.MaxConcurrent > 0, so ungoverned engines pay a single nil check
// per request.
type admitter struct {
	capacity     int
	maxQueue     int
	queueTimeout time.Duration
	// retryHint estimates time until capacity frees for a shed request,
	// given the current queue length (wired to the engine's average
	// execution time).
	retryHint func(queueLen int) time.Duration

	mu    sync.Mutex
	inUse int
	queue []*waiter
	stats AdmissionStats
}

// acquire blocks until weight units of capacity are granted, the context
// fires, or the bounded queue sheds the request. Weights above capacity are
// clamped so oversized requests (update batches on a capacity-1 engine)
// still run — alone.
func (a *admitter) acquire(ctx context.Context, weight int) error {
	if a == nil {
		return nil
	}
	if weight > a.capacity {
		weight = a.capacity
	}
	a.mu.Lock()
	if len(a.queue) == 0 && a.inUse+weight <= a.capacity {
		a.inUse += weight
		a.stats.Admitted++
		a.mu.Unlock()
		return nil
	}
	if len(a.queue) >= a.maxQueue {
		a.stats.Shed++
		hint := a.retryHint(len(a.queue))
		a.mu.Unlock()
		return &OverloadedError{RetryAfter: hint}
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.stats.Queued++
	a.mu.Unlock()

	var timeoutC <-chan time.Time
	if a.queueTimeout > 0 {
		timer := time.NewTimer(a.queueTimeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case <-w.ready:
		a.count(&a.stats.Admitted)
		return nil
	case <-ctx.Done():
		if !a.abandon(w) {
			// Lost the race: the grant arrived as the context fired.
			// Return it so the queue keeps draining.
			a.release(w.weight)
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			a.count(&a.stats.TimedOut)
		} else {
			a.count(&a.stats.Canceled)
		}
		return fmt.Errorf("engine: request context fired while queued for admission: %w", ErrCanceled)
	case <-timeoutC:
		if !a.abandon(w) {
			a.release(w.weight)
		}
		a.count(&a.stats.TimedOut)
		a.mu.Lock()
		hint := a.retryHint(len(a.queue))
		a.mu.Unlock()
		return &OverloadedError{RetryAfter: hint}
	}
}

// abandon removes w from the wait queue, reporting whether it was still
// queued. False means the grant already happened and the caller owns it.
func (a *admitter) abandon(w *waiter) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			return true
		}
	}
	return false
}

// release returns weight units of capacity and grants FIFO waiters that now
// fit.
func (a *admitter) release(weight int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.inUse -= weight
	for len(a.queue) > 0 {
		w := a.queue[0]
		if a.inUse+w.weight > a.capacity {
			break
		}
		a.queue = a.queue[1:]
		a.inUse += w.weight
		close(w.ready)
	}
	a.mu.Unlock()
}

// count bumps one stats counter under the mutex.
func (a *admitter) count(c *uint64) {
	a.mu.Lock()
	*c++
	a.mu.Unlock()
}

// snapshot copies the outcome counters.
func (a *admitter) snapshot() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// newAdmitter builds the engine's admission controller, or nil when
// Options.MaxConcurrent leaves admission disabled.
func newAdmitter(opt Options, retryHint func(int) time.Duration) *admitter {
	if opt.MaxConcurrent <= 0 {
		return nil
	}
	maxQueue := opt.MaxQueue
	if maxQueue == 0 {
		maxQueue = 4 * opt.MaxConcurrent
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admitter{
		capacity:     opt.MaxConcurrent,
		maxQueue:     maxQueue,
		queueTimeout: opt.QueueTimeout,
		retryHint:    retryHint,
	}
}

// MinRetryAfter floors every OverloadedError.RetryAfter hint. A cold or
// fast engine observes sub-millisecond average execution times, and a hint
// in the microsecond range tells clients to hammer an engine that just shed
// them — and truncates to Retry-After: 0 once mapped onto HTTP integer
// seconds, a retry-storm invitation. Shedding only happens when the wait
// queue is already full, so the earliest useful retry is never sooner than
// a sizeable fraction of the queue drain time.
const MinRetryAfter = 50 * time.Millisecond

// retryHint estimates when a shed request should retry: the engine's
// average execution time (floored at 1ms so a cold engine still hints
// something) times the number of requests ahead of it, never below
// MinRetryAfter.
func (e *Engine) retryHint(queueLen int) time.Duration {
	avg := time.Millisecond
	if n := e.execCount.Load(); n > 0 {
		if a := time.Duration(e.execTime.Load() / int64(n)); a > avg {
			avg = a
		}
	}
	hint := avg * time.Duration(queueLen+1)
	if hint < MinRetryAfter {
		hint = MinRetryAfter
	}
	return hint
}

// Stable machine-readable error codes for the serving boundary. Error
// strings are for humans; network clients need to distinguish a budget trip
// from a cancel without string matching, so every typed engine error maps
// onto one of these. The set only grows — codes are wire contract.
const (
	// CodeOverloaded: admission control shed the request (ErrOverloaded).
	CodeOverloaded = "overloaded"
	// CodeBudgetExceeded: the request exhausted an explicit resource
	// budget (ErrBudgetExceeded).
	CodeBudgetExceeded = "budget_exceeded"
	// CodeCanceled: the request's context was canceled or its deadline
	// expired mid-evaluation (ErrCanceled).
	CodeCanceled = "canceled"
	// CodeInternal: an evaluation panicked and was converted to an error at
	// the engine boundary (ErrInternal).
	CodeInternal = "internal"
	// CodeArityMismatch: wrong Exec argument count, parameterized plan in
	// Eval, or a tuple of the wrong width (ErrArityMismatch,
	// storage.ArityError).
	CodeArityMismatch = "arity_mismatch"
	// CodeNotLive: a mutation on an engine built without
	// Options.LiveUpdates (ErrNotLive).
	CodeNotLive = "not_live"
	// CodeDurability: a durable-storage write failed and the engine is
	// fail-stopped for mutations (ErrDurability).
	CodeDurability = "durability"
)

// ErrorCode maps a typed engine error to its stable machine-readable code,
// or "" when the error is nil or carries no engine type (callers pick their
// own code for those — a parse error, say). Wrapping is respected: a
// QueryError around ErrBudgetExceeded reports CodeBudgetExceeded, and a
// bare context cancellation maps to CodeCanceled like the typed form.
func ErrorCode(err error) string {
	var arity *storage.ArityError
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrBudgetExceeded):
		return CodeBudgetExceeded
	case errors.Is(err, ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return CodeCanceled
	case errors.Is(err, ErrArityMismatch), errors.As(err, &arity):
		return CodeArityMismatch
	case errors.Is(err, ErrNotLive):
		return CodeNotLive
	case errors.Is(err, ErrDurability):
		return CodeDurability
	case errors.Is(err, ErrInternal):
		return CodeInternal
	default:
		return ""
	}
}

// recoverInternal converts a panic escaping an execution path into a typed
// *InternalError, counting it. Deferred at every public entry point that
// evaluates plans or applies batches.
func (e *Engine) recoverInternal(err *error) {
	if r := recover(); r != nil {
		e.panics.Add(1)
		*err = &InternalError{Value: r, Stack: debug.Stack()}
	}
}

// ---- Context- and budget-aware entry points ----

// AnswerCtx is Answer under a context: evaluation observes cancellation
// within one guard interval and returns ErrCanceled. The engine-wide
// Options.Budget applies.
func (e *Engine) AnswerCtx(ctx context.Context, q *cq.Query) ([]storage.Tuple, error) {
	return e.AnswerBudget(ctx, q, e.opt.Budget)
}

// AnswerBudget is Answer under a context and an explicit per-call budget
// overriding Options.Budget.
func (e *Engine) AnswerBudget(ctx context.Context, q *cq.Query, b Budget) ([]storage.Tuple, error) {
	pq, err := e.Prepare(q)
	if err != nil {
		return nil, err
	}
	return e.execBudget(ctx, pq.plan, pq.args, b)
}

// ExecCtx is Exec under a context; the engine-wide Options.Budget applies.
func (pq *PreparedQuery) ExecCtx(ctx context.Context, args ...string) ([]storage.Tuple, error) {
	return pq.ExecBudget(ctx, pq.eng.opt.Budget, args...)
}

// ExecBudget is Exec under a context and an explicit per-call budget.
func (pq *PreparedQuery) ExecBudget(ctx context.Context, b Budget, args ...string) ([]storage.Tuple, error) {
	if len(args) != len(pq.plan.Params) {
		return nil, fmt.Errorf("engine: prepared query takes %d argument(s), got %d: %w",
			len(pq.plan.Params), len(args), ErrArityMismatch)
	}
	return pq.eng.execBudget(ctx, pq.plan, args, b)
}

// EvalCtx is Eval under a context; the engine-wide Options.Budget applies.
func (e *Engine) EvalCtx(ctx context.Context, p *Plan) ([]storage.Tuple, error) {
	if len(p.Params) > 0 {
		return nil, fmt.Errorf("engine: plan takes %d parameter(s); execute it through Prepare/Exec: %w",
			len(p.Params), ErrArityMismatch)
	}
	return e.execBudget(ctx, p, nil, e.opt.Budget)
}

// execBudget is the single execution path every query entry point funnels
// through: panic isolation, admission, deadline attachment, snapshot pin,
// budget-guarded evaluation, counters. With a background context, a zero
// budget and admission disabled it reduces to the ungoverned fast path —
// nil guards all the way down.
func (e *Engine) execBudget(ctx context.Context, p *Plan, args []string, b Budget) (answers []storage.Tuple, err error) {
	defer e.recoverInternal(&err)
	if err := e.admit.acquire(ctx, 1); err != nil {
		return nil, err
	}
	defer e.admit.release(1)
	ctx, cancel := b.apply(ctx)
	if cancel != nil {
		defer cancel()
	}
	start := time.Now()
	db, pdb, release := e.snapshot()
	if release != nil {
		defer release()
	}
	answers, err = e.evalPlanCtx(ctx, db, pdb, p, args, b.limits())
	if err != nil {
		return nil, err
	}
	e.execCount.Add(1)
	e.execTime.Add(int64(time.Since(start)))
	return answers, nil
}

// ApplyBatchCtx is ApplyBatch under a context: the propagation observes
// cancellation within one guard interval or round barrier, and a canceled
// batch is atomic — the maintainer rolls its database back and neither
// serving side is touched, so the engine keeps answering from the exact
// pre-batch state and the batch can simply be retried. The engine-wide
// Options.Budget applies (deadline, MaxDerivedTuples, MaxFixpointRounds;
// MaxResultRows does not apply to updates).
func (e *Engine) ApplyBatchCtx(ctx context.Context, updates map[string][]storage.Tuple) error {
	return e.ApplyUpdateBudget(ctx, updates, nil, e.opt.Budget)
}

// ApplyBatchBudget is ApplyBatch under a context and an explicit per-call
// budget, with the same atomicity guarantee as ApplyBatchCtx.
func (e *Engine) ApplyBatchBudget(ctx context.Context, updates map[string][]storage.Tuple, b Budget) error {
	return e.ApplyUpdateBudget(ctx, updates, nil, b)
}

// ApplyUpdateCtx is ApplyUpdate under a context, with the same atomicity
// guarantee as ApplyBatchCtx: a canceled or budget-tripped batch — even
// one caught mid-retraction — rolls the maintainer back and never touches
// the serving sides. The engine-wide Options.Budget applies.
func (e *Engine) ApplyUpdateCtx(ctx context.Context, inserts, deletes map[string][]storage.Tuple) error {
	return e.ApplyUpdateBudget(ctx, inserts, deletes, e.opt.Budget)
}

// ApplyUpdateBudget is the mixed-batch execution path every mutation entry
// point funnels through: panic isolation, admission (updates weigh 2),
// deadline attachment, the maintainer's atomic propagation, and the
// left-right publish of removals and deltas.
func (e *Engine) ApplyUpdateBudget(ctx context.Context, inserts, deletes map[string][]storage.Tuple, b Budget) (err error) {
	if e.live == nil {
		return ErrNotLive
	}
	defer e.recoverInternal(&err)
	if err := e.admit.acquire(ctx, 2); err != nil {
		return err
	}
	defer e.admit.release(2)
	ctx, cancel := b.apply(ctx)
	if cancel != nil {
		defer cancel()
	}
	l := e.live
	l.updateMu.Lock()
	defer l.updateMu.Unlock()
	if e.dur != nil {
		if derr := e.dur.store.Err(); derr != nil {
			// Fail-stop: an earlier WAL write failed; accepting this batch
			// would let the served state outrun the recoverable one.
			return fmt.Errorf("%w: %v", ErrDurability, derr)
		}
	}
	start := time.Now()
	res, err := l.maint.ApplyUpdateCtx(ctx, inserts, deletes, b.limits())
	if err != nil {
		// The maintainer rolled back; the serving sides were never touched.
		return err
	}
	// Commit protocol with durability on: the batch is fsynced to the WAL
	// after the maintainer accepted it (so a canceled or budget-tripped
	// batch is never logged) and before it publishes (so recovery replays
	// exactly the batches callers were acknowledged for). If the append
	// fails, the batch is not published and the engine wedges mutations:
	// the maintainer is one unacknowledged batch ahead of the sides, which
	// is invisible to readers and absent after restart.
	if e.dur != nil {
		if derr := e.dur.logBatch(res); derr != nil {
			return derr
		}
	}
	// A batch that finishes propagation before the deadline publishes: the
	// publish step replays already-computed removals and deltas and is not
	// a cancellation point — aborting it would tear the left-right pair.
	if err := e.publish(res); err != nil {
		return err
	}
	if e.dur != nil {
		e.dur.maybeCheckpoint(e)
	}
	baseNew, baseGone, retracted := 0, 0, 0
	for _, tuples := range res.BaseInserted {
		baseNew += len(tuples)
	}
	for _, tuples := range res.BaseDeleted {
		baseGone += len(tuples)
	}
	for _, tuples := range res.ExtentRetracted {
		retracted += len(tuples)
	}
	e.updBatches.Add(1)
	e.updTuples.Add(uint64(baseNew))
	e.updDeleted.Add(uint64(baseGone))
	e.updDerived.Add(uint64(res.Stats.Derived))
	e.updRetracted.Add(uint64(retracted))
	e.maintainTime.Add(int64(time.Since(start)))
	return nil
}

// sideRemoval is one journaled serving-side retraction: the tuple applySide
// removed from a side's flat database (and its partitioned twin).
type sideRemoval struct {
	pred string
	t    storage.Tuple
}

// sideUndo records both serving sides' pre-publish relation sizes plus the
// active pointer, and accumulates the removals applySide performs, so a
// failed or panicking publish can restore the pair: truncate each relation
// past the appended deltas, then re-insert the journaled removals.
type sideUndo struct {
	active  int32
	flat    [2]map[string]int
	part    [2]map[string][]int
	removed [2][]sideRemoval
}

// snapshotSides captures the publish undo log. Called under updateMu — the
// sides are only mutated by the (single) writer, so lock-free length reads
// are safe.
func (l *liveState) snapshotSides() sideUndo {
	u := sideUndo{active: l.active.Load()}
	for i := 0; i < 2; i++ {
		u.flat[i] = make(map[string]int)
		db := l.sides[i]
		for _, pred := range db.Predicates() {
			u.flat[i][pred] = db.Relation(pred).Len()
		}
		if pdb := l.psides[i]; pdb != nil {
			u.part[i] = make(map[string][]int)
			for _, pred := range pdb.Predicates() {
				pr := pdb.Relation(pred)
				ns := make([]int, pr.NumShards())
				for s := range ns {
					ns[s] = pr.Shard(s).Len()
				}
				u.part[i][pred] = ns
			}
		}
	}
	return u
}

// restoreSides rolls both serving sides back to the undo log under their
// write locks and restores the active pointer — the pair is mutually
// consistent (both pre-batch) again even if publish failed halfway.
// Removals replayed before the appends shrank each relation below its
// snapshot length, so the truncation target is the snapshot minus the
// journaled removal count; re-inserting the journaled tuples afterwards
// restores the pre-batch tuple set exactly (intra-relation order may
// permute — Remove backfills from the tail — which snapshots never
// observe).
func (l *liveState) restoreSides(u sideUndo) {
	for i := 0; i < 2; i++ {
		l.locks[i].Lock()
		db := l.sides[i]
		removed := make(map[string]int, len(u.removed[i]))
		for _, r := range u.removed[i] {
			removed[r.pred]++
		}
		for _, pred := range db.Predicates() {
			n, ok := u.flat[i][pred]
			if !ok {
				db.Drop(pred)
				continue
			}
			db.Relation(pred).TruncateTo(n - removed[pred])
		}
		pdb := l.psides[i]
		if pdb != nil {
			for _, pred := range pdb.Predicates() {
				ns, ok := u.part[i][pred]
				if !ok {
					pdb.Drop(pred)
					continue
				}
				pr := pdb.Relation(pred)
				shardRemoved := make([]int, pr.NumShards())
				if removed[pred] > 0 {
					col := pr.PartitionColumn()
					for _, r := range u.removed[i] {
						if r.pred != pred {
							continue
						}
						s := 0
						if pr.Arity() > 0 {
							s = storage.ShardOf(r.t[col], pr.NumShards())
						}
						shardRemoved[s]++
					}
				}
				for s, n := range ns {
					pr.Shard(s).TruncateTo(n - shardRemoved[s])
				}
			}
		}
		for j := len(u.removed[i]) - 1; j >= 0; j-- {
			r := u.removed[i][j]
			db.Relation(r.pred).Insert(r.t)
			if pdb != nil {
				if pr := pdb.Relation(r.pred); pr != nil {
					pr.Insert(r.t)
				}
			}
		}
		l.locks[i].Unlock()
	}
	l.active.Store(u.active)
}

// publish replays a batch's removals and deltas onto both serving sides
// with the usual left-right flip. On an error or panic partway through,
// both sides are rolled back to their pre-batch state and the active
// pointer restored, so the serving pair never stays torn; a panic is
// re-raised to the entry point's recover guard after the rollback.
func (e *Engine) publish(res *ivm.BatchResult) error {
	l := e.live
	undo := l.snapshotSides()
	defer func() {
		if r := recover(); r != nil {
			l.restoreSides(undo)
			panic(r)
		}
	}()
	i := 1 - undo.active
	if err := l.applySide(i, res, &undo); err != nil {
		l.restoreSides(undo)
		return err
	}
	l.active.Store(i)
	if err := l.applySide(1-i, res, &undo); err != nil {
		l.restoreSides(undo)
		return err
	}
	return nil
}

// evalPlanCtx is evalPlan under a context and limits: the compiled
// executors run with amortized cancellation guards, budget trips surface as
// typed errors, and fixpoint failures carry their partial-progress stats in
// a QueryError. With a never-firing context and zero limits the guards are
// nil and the evaluation is bit-for-bit the ungoverned one.
func (e *Engine) evalPlanCtx(ctx context.Context, db *storage.Database, pdb *storage.PartitionedDatabase, p *Plan, args []string, lim datalog.Limits) ([]storage.Tuple, error) {
	workers := e.opt.EvalWorkers
	if workers <= 0 {
		workers = 1
	}
	switch p.Kind {
	case PlanEquivalent:
		if p.Compiled == nil { // plan built outside the engine
			if len(p.Params) > 0 {
				return nil, errParamsNotCompiled
			}
			return datalog.EvalQuery(db, p.Rewriting.Query), nil
		}
		if pdb != nil {
			return p.Compiled.EvalShardedCtx(ctx, pdb, args, workers, lim)
		}
		return p.Compiled.EvalParallelCtx(ctx, db, args, workers, lim)
	case PlanMaxContained:
		if p.CompiledUnion == nil {
			if len(p.Params) > 0 {
				return nil, errParamsNotCompiled
			}
			return datalog.EvalUnion(db, p.Union), nil
		}
		var out []storage.Tuple
		seen := make(map[string]bool)
		for _, cp := range p.CompiledUnion {
			var (
				tuples []storage.Tuple
				err    error
			)
			if pdb != nil {
				tuples, err = cp.EvalShardedUnsortedCtx(ctx, pdb, args, workers, lim)
			} else {
				tuples, err = cp.EvalParallelUnsortedCtx(ctx, db, args, workers, lim)
			}
			if err != nil {
				return nil, err
			}
			for _, t := range tuples {
				if k := t.Key(); !seen[k] {
					seen[k] = true
					out = append(out, t)
				}
			}
			// Per-member guards bound each member; the union can still
			// exceed the row budget across members, so re-check exactly.
			if lim.MaxRows > 0 && len(out) > lim.MaxRows {
				return nil, fmt.Errorf("engine: union result has %d row(s), budget is %d: %w",
					len(out), lim.MaxRows, ErrBudgetExceeded)
			}
		}
		return storage.SortTuples(out), nil
	case PlanInverseProgram:
		var derived []storage.Tuple
		if p.CompiledProgram != nil {
			var (
				tuples []storage.Tuple
				fst    datalog.FixpointStats
				err    error
			)
			if pdb != nil {
				tuples, fst, err = p.CompiledProgram.EvalRelationShardedCtx(ctx, pdb, p.AnswerPred, workers, lim)
			} else {
				tuples, fst, err = p.CompiledProgram.EvalRelationCtx(ctx, db, p.AnswerPred, workers, lim)
			}
			e.fixpointRuns.Add(1)
			e.fixpointIters.Add(uint64(fst.Iterations))
			e.fixpointDrvd.Add(uint64(fst.Derived))
			if err != nil {
				return nil, &QueryError{Err: err, Stats: fst}
			}
			derived = tuples
		} else { // plan built outside the engine
			out, err := p.Program.Eval(db)
			if err != nil {
				return nil, err
			}
			if rel := out.Relation(p.AnswerPred); rel != nil {
				derived = rel.Tuples()
			}
		}
		// A parameterized program derives the answer relation with the
		// placeholder columns appended to the head: select the rows
		// matching the binding and project them away.
		derived = selectParams(derived, p.Arity, args)
		answers := datalog.CertainAnswers(derived)
		// The fixpoint guard bounds derivations, not final answers: the
		// result-row budget applies after selection and minimization.
		if lim.MaxRows > 0 && len(answers) > lim.MaxRows {
			return nil, fmt.Errorf("engine: result has %d row(s), budget is %d: %w",
				len(answers), lim.MaxRows, ErrBudgetExceeded)
		}
		return answers, nil
	default:
		return nil, fmt.Errorf("engine: unknown plan kind %d", p.Kind)
	}
}
