// Package inverserules implements the inverse-rules algorithm (Duschka &
// Genesereth) for answering queries using views: each view definition is
// inverted into datalog rules that reconstruct the base relations from view
// extents, introducing Skolem function terms for the view's existential
// variables. The query is then evaluated over the reconstructed relations
// and answers containing Skolem values are discarded.
//
// The algorithm produces the maximally-contained answer set for conjunctive
// queries and is notable for doing no rewriting-time search at all — its
// cost shifts entirely to evaluation time, which experiment F4 measures
// against evaluating the MiniCon rewriting. That evaluation now runs on the
// compiled semi-naive executor (datalog.CompileProgram): Answer compiles the
// program on the fly, and serving callers should Compile once and evaluate
// the returned CompiledProgram per request, as the engine's plan cache does.
package inverserules

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/storage"
)

// Invert builds the inverse rules of a single view: one rule per body atom,
// reading from the view's extent relation. Existential view variables
// become Skolem terms f{view,i}(distinguished vars).
func Invert(view *cq.Query) ([]datalog.Rule, error) {
	if err := view.Validate(); err != nil {
		return nil, fmt.Errorf("inverserules: %w", err)
	}
	if len(view.Comparisons) > 0 {
		return nil, fmt.Errorf("inverserules: view %s has comparisons; inverse rules are defined for pure conjunctive views", view.Name())
	}
	distinguished := make(map[string]bool)
	for _, t := range view.Head.Args {
		if t.IsVar() {
			distinguished[t.Lex] = true
		}
	}
	// Head-argument variable list for Skolem arguments: distinguished vars
	// in head order (deduplicated).
	var headArgVars []string
	seenHV := make(map[string]bool)
	for _, t := range view.Head.Args {
		if t.IsVar() && !seenHV[t.Lex] {
			seenHV[t.Lex] = true
			headArgVars = append(headArgVars, t.Lex)
		}
	}

	skolems := make(map[string]*datalog.Skolem)
	skolemFor := func(v string) *datalog.Skolem {
		if s, ok := skolems[v]; ok {
			return s
		}
		s := &datalog.Skolem{
			Name: fmt.Sprintf("f_%s_%s", view.Name(), v),
			Args: headArgVars,
		}
		skolems[v] = s
		return s
	}

	body := []cq.Atom{{Pred: view.Name(), Args: view.Head.Args}}
	rules := make([]datalog.Rule, 0, len(view.Body))
	for _, a := range view.Body {
		head := make([]datalog.HeadTerm, len(a.Args))
		for i, t := range a.Args {
			switch {
			case t.IsConst():
				head[i] = datalog.HeadTerm{Term: t}
			case distinguished[t.Lex]:
				head[i] = datalog.HeadTerm{Term: t}
			default:
				head[i] = datalog.HeadTerm{Skolem: skolemFor(t.Lex)}
			}
		}
		rules = append(rules, datalog.Rule{HeadPred: a.Pred, Head: head, Body: body})
	}
	return rules, nil
}

// Program builds the full inverse-rules program for a query and a view set:
// the inverse rules of every view plus the query itself as a rule deriving
// the answer predicate.
func Program(q *cq.Query, views []*cq.Query) (*datalog.Program, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("inverserules: %w", err)
	}
	p := &datalog.Program{}
	for _, v := range views {
		rules, err := Invert(v)
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, rules...)
	}
	p.Rules = append(p.Rules, datalog.RuleFromQuery(q))
	return p, nil
}

// Compile builds the inverse-rules program for q over views and lowers it to
// its compiled semi-naive form under the catalog's statistics (nil falls
// back to bound-columns-first join ordering). The result is immutable and
// may be evaluated concurrently; the serving engine caches it in its plan
// LRU beside the rewriting plans.
func Compile(q *cq.Query, views []*cq.Query, cat *cost.Catalog) (*datalog.CompiledProgram, error) {
	p, err := Program(q, views)
	if err != nil {
		return nil, err
	}
	return datalog.CompileProgram(p, cat)
}

// Answer evaluates the query over the view extents in viewDB using inverse
// rules and returns the certain answers (tuples free of Skolem values), in
// sorted order. The fixpoint runs on the compiled semi-naive executor via
// Program.Eval; repeated callers should Compile once instead.
func Answer(q *cq.Query, views []*cq.Query, viewDB *storage.Database) ([]storage.Tuple, error) {
	p, err := Program(q, views)
	if err != nil {
		return nil, err
	}
	out, err := p.Eval(viewDB)
	if err != nil {
		return nil, err
	}
	rel := out.Relation(q.Name())
	if rel == nil {
		return nil, nil
	}
	return datalog.CertainAnswers(rel.Tuples()), nil
}
