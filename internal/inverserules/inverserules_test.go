package inverserules

import (
	"strings"
	"testing"

	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/storage"
)

func mustQ(src string) *cq.Query { return cq.MustParseQuery(src) }

func TestInvertBasic(t *testing.T) {
	v := mustQ("v(A,B) :- r(A,C), s(C,B)")
	rules, err := Invert(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %v", rules)
	}
	s0 := rules[0].String()
	if !strings.HasPrefix(s0, "r(A,f_v_C(A,B)) :- v(A,B).") {
		t.Fatalf("rule 0 = %q", s0)
	}
	s1 := rules[1].String()
	if !strings.HasPrefix(s1, "s(f_v_C(A,B),B) :- v(A,B).") {
		t.Fatalf("rule 1 = %q", s1)
	}
}

func TestInvertSharedSkolem(t *testing.T) {
	// The same existential variable must use the same Skolem function in
	// every rule, so reconstructed tuples re-join.
	v := mustQ("v(A) :- r(A,C), s(C)")
	rules, err := Invert(v)
	if err != nil {
		t.Fatal(err)
	}
	r0, r1 := rules[0].String(), rules[1].String()
	if !strings.Contains(r0, "f_v_C(A)") || !strings.Contains(r1, "f_v_C(A)") {
		t.Fatalf("skolems differ: %q vs %q", r0, r1)
	}
}

func TestInvertConstants(t *testing.T) {
	v := mustQ("v(A) :- r(A,5)")
	rules, err := Invert(v)
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].String() != "r(A,5) :- v(A)." {
		t.Fatalf("rule = %q", rules[0].String())
	}
}

func TestInvertRejectsComparisons(t *testing.T) {
	if _, err := Invert(mustQ("v(A) :- r(A), A > 3")); err == nil {
		t.Fatal("view with comparisons accepted")
	}
}

func TestInvertRejectsInvalid(t *testing.T) {
	if _, err := Invert(&cq.Query{Head: cq.NewAtom("v", cq.Var("A"))}); err == nil {
		t.Fatal("invalid view accepted")
	}
}

func TestAnswerJoinThroughSkolem(t *testing.T) {
	// v(A,B) :- r(A,C), s(C,B). The C value is lost, but the Skolem
	// reconstruction lets q re-join r and s *within* one view tuple.
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "m"})
	base.Insert("s", storage.Tuple{"m", "x"})
	views := []*cq.Query{mustQ("v(A,B) :- r(A,C), s(C,B)")}
	viewDB, err := datalog.MaterializeViews(base, views)
	if err != nil {
		t.Fatal(err)
	}
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	got, err := Answer(q, views, viewDB)
	if err != nil {
		t.Fatal(err)
	}
	if !storage.TuplesEqual(got, []storage.Tuple{{"a", "x"}}) {
		t.Fatalf("answers = %v", got)
	}
}

func TestAnswerFiltersSkolems(t *testing.T) {
	// q asks for the hidden join value: only Skolem tuples would answer,
	// so the certain answer set is empty.
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "m"})
	views := []*cq.Query{mustQ("v(A) :- r(A,C)")}
	viewDB, _ := datalog.MaterializeViews(base, views)
	q := mustQ("q(Y) :- r(X,Y)")
	got, err := Answer(q, views, viewDB)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("answers = %v", got)
	}
	// But asking for the visible column works.
	q2 := mustQ("q(X) :- r(X,Y)")
	got2, _ := Answer(q2, views, viewDB)
	if !storage.TuplesEqual(got2, []storage.Tuple{{"a"}}) {
		t.Fatalf("answers = %v", got2)
	}
}

func TestAnswerMultipleViews(t *testing.T) {
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "m"})
	base.Insert("s", storage.Tuple{"m", "x"})
	views := []*cq.Query{
		mustQ("v1(A,B) :- r(A,B)"),
		mustQ("v2(A,B) :- s(A,B)"),
	}
	viewDB, _ := datalog.MaterializeViews(base, views)
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	got, err := Answer(q, views, viewDB)
	if err != nil {
		t.Fatal(err)
	}
	if !storage.TuplesEqual(got, []storage.Tuple{{"a", "x"}}) {
		t.Fatalf("answers = %v", got)
	}
}

func TestAnswerNoSpuriousJoins(t *testing.T) {
	// Two view tuples with the same hidden variable pattern must not
	// cross-join: skolem(a) != skolem(b).
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "m"})
	base.Insert("s", storage.Tuple{"n", "x"}) // m != n: no join
	views := []*cq.Query{mustQ("v(A,B) :- r(A,C), s(C,B)")}
	viewDB, _ := datalog.MaterializeViews(base, views)
	if viewDB.Relation("v").Len() != 0 {
		t.Fatal("view extent should be empty")
	}
	// Seed the extent manually as if the source had matching tuples for
	// two different hidden values.
	viewDB.Insert("v", storage.Tuple{"a", "x"})
	viewDB.Insert("v", storage.Tuple{"b", "y"})
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	got, err := Answer(q, views, viewDB)
	if err != nil {
		t.Fatal(err)
	}
	want := []storage.Tuple{{"a", "x"}, {"b", "y"}}
	if !storage.TuplesEqual(got, want) {
		t.Fatalf("answers = %v want %v (no cross joins)", got, want)
	}
}

func TestProgramIncludesQueryRule(t *testing.T) {
	p, err := Program(mustQ("q(X) :- r(X,Y)"), []*cq.Query{mustQ("v(A,B) :- r(A,B)")})
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if !strings.Contains(s, "q(X) :- r(X,Y).") || !strings.Contains(s, "r(A,B) :- v(A,B).") {
		t.Fatalf("program:\n%s", s)
	}
}

func TestProgramInvalidInputs(t *testing.T) {
	if _, err := Program(&cq.Query{Head: cq.NewAtom("q", cq.Var("X"))}, nil); err == nil {
		t.Fatal("invalid query accepted")
	}
	if _, err := Program(mustQ("q(X) :- r(X)"), []*cq.Query{mustQ("v(A) :- r(A), A > 1")}); err == nil {
		t.Fatal("view with comparisons accepted")
	}
}

func TestAnswerEmptyViewDB(t *testing.T) {
	got, err := Answer(mustQ("q(X) :- r(X)"), []*cq.Query{mustQ("v(A) :- r(A)")}, storage.NewDatabase())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("answers = %v", got)
	}
}
