package minicon

import (
	"testing"

	"repro/internal/bucket"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/storage"
)

func mustQ(src string) *cq.Query { return cq.MustParseQuery(src) }

func viewSet(srcs ...string) *core.ViewSet {
	vs := make([]*cq.Query, len(srcs))
	for i, s := range srcs {
		vs[i] = mustQ(s)
	}
	return core.MustNewViewSet(vs...)
}

func TestFormMCDsBasic(t *testing.T) {
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	vs := viewSet("v1(A,B) :- r(A,B)", "v2(A,B) :- s(A,B)")
	mcds := FormMCDs(q, vs)
	if len(mcds) != 2 {
		t.Fatalf("MCDs = %v", mcds)
	}
	for _, m := range mcds {
		if len(m.Covers()) != 1 {
			t.Fatalf("MCD covers = %v", m.Covers())
		}
		_ = m.String()
	}
}

func TestFormMCDsExtendsOverHiddenVar(t *testing.T) {
	// The view hides B, so covering r(X,Z) forces covering s(Z) too —
	// the defining MiniCon behaviour.
	q := mustQ("q(X) :- r(X,Z), s(Z)")
	vs := viewSet("v(A) :- r(A,B), s(B)")
	mcds := FormMCDs(q, vs)
	if len(mcds) != 1 {
		t.Fatalf("MCDs = %v", mcds)
	}
	if got := mcds[0].Covers(); len(got) != 2 {
		t.Fatalf("MCD must cover both subgoals, got %v", got)
	}
}

func TestFormMCDsFailsWhenExtensionImpossible(t *testing.T) {
	// The view hides B but has no s-atom to cover s(Z): no MCD.
	q := mustQ("q(X) :- r(X,Z), s(Z)")
	vs := viewSet("v(A) :- r(A,B)")
	if mcds := FormMCDs(q, vs); len(mcds) != 0 {
		t.Fatalf("MCDs = %v", mcds)
	}
}

func TestFormMCDsHeadVarOnExistentialFails(t *testing.T) {
	q := mustQ("q(X,Y) :- r(X,Y)")
	vs := viewSet("v(A) :- r(A,B)")
	if mcds := FormMCDs(q, vs); len(mcds) != 0 {
		t.Fatalf("MCDs = %v", mcds)
	}
}

func TestFormMCDsConstants(t *testing.T) {
	// Constant in the query against a distinguished view variable: ok.
	q := mustQ("q(X) :- r(X,5)")
	vs := viewSet("v(A,B) :- r(A,B)")
	mcds := FormMCDs(q, vs)
	if len(mcds) != 1 {
		t.Fatalf("MCDs = %v", mcds)
	}
	// Against an existential: no MCD.
	vs2 := viewSet("w(A) :- r(A,B)")
	if m := FormMCDs(q, vs2); len(m) != 0 {
		t.Fatalf("MCDs = %v", m)
	}
	// Against the same constant in the view: ok.
	vs3 := viewSet("u(A) :- r(A,5)")
	if m := FormMCDs(q, vs3); len(m) != 1 {
		t.Fatalf("MCDs = %v", m)
	}
	// Against a different constant: no MCD.
	vs4 := viewSet("z(A) :- r(A,7)")
	if m := FormMCDs(q, vs4); len(m) != 0 {
		t.Fatalf("MCDs = %v", m)
	}
}

func TestFormMCDsBranchingClosure(t *testing.T) {
	// Covering t(W) can use t(1) (binding W to the constant) or t(C)
	// (keeping W existential): the exhaustive closure must produce both
	// variants, since they combine differently.
	q := mustQ("q(X) :- r(X,Z), s(Z,W), t(W)")
	vs := viewSet("v(A) :- r(A,B), s(B,C), t(1), t(C)")
	mcds := FormMCDs(q, vs)
	if len(mcds) < 2 {
		t.Fatalf("branching closure lost variants: %v", mcds)
	}
	// Among the full-coverage closures, both W variants must appear.
	constVariant, existVariant := false, false
	for _, m := range mcds {
		if len(m.Covers()) != 3 {
			continue // e.g. the standalone t-cover with W bound to 1
		}
		img := m.viewSub.Walk(m.phi["W"])
		if img.IsConst() {
			constVariant = true
		} else {
			existVariant = true
		}
	}
	if !constVariant || !existVariant {
		t.Fatalf("missing W variant: const=%v exist=%v (%v)", constVariant, existVariant, mcds)
	}
}

func TestRewriteEquivalentCase(t *testing.T) {
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	vs := viewSet("v1(A,B) :- r(A,B)", "v2(A,B) :- s(A,B)")
	u, st, err := Rewrite(q, vs, Options{VerifyCandidates: true})
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() == 0 {
		t.Fatal("no rewriting found")
	}
	exp, _ := core.ExpandUnion(u, vs)
	if !containment.UnionContained(exp, q) || !containment.ContainedInUnion(q, exp) {
		t.Fatalf("rewriting not equivalent: %v", u)
	}
	if st.MCDs == 0 || st.Kept == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRewriteSoundWithoutVerification(t *testing.T) {
	// The MiniCon property must make unverified combinations sound.
	q := mustQ("q(X) :- r(X,Z), s(Z), t(X)")
	vs := viewSet(
		"v1(A) :- r(A,B), s(B)",
		"v2(A) :- t(A)",
		"v3(A,B) :- r(A,B)",
		"v4(A) :- s(A)",
	)
	u, _, err := Rewrite(q, vs, Options{VerifyCandidates: false, SkipMinimizeUnion: true})
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() == 0 {
		t.Fatal("no rewritings")
	}
	for _, m := range u.Queries {
		exp, err := core.Expand(m, vs)
		if err != nil {
			t.Fatalf("expand %v: %v", m, err)
		}
		if !containment.Contained(exp, q) {
			t.Fatalf("unverified member unsound: %v (exp %v)", m, exp)
		}
	}
}

func TestRewriteSharedExistentialAcrossViews(t *testing.T) {
	// Both views expose the join variable: two MCDs combine.
	q := mustQ("q(X) :- r(X,Z), s(Z)")
	vs := viewSet("v3(A,B) :- r(A,B)", "v4(A) :- s(A)")
	u, _, err := Rewrite(q, vs, Options{VerifyCandidates: true})
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 1 {
		t.Fatalf("union = %v", u)
	}
	if len(u.Queries[0].Body) != 2 {
		t.Fatalf("rewriting = %v", u.Queries[0])
	}
}

func TestRewriteAgainstBucketAgreement(t *testing.T) {
	// On pure-CQ workloads the two algorithms must produce semantically
	// equal maximally-contained rewritings.
	cases := []struct {
		q     string
		views []string
	}{
		{
			"q(X,Y) :- r(X,Z), s(Z,Y)",
			[]string{"v1(A,B) :- r(A,B)", "v2(A,B) :- s(A,B)", "v3(A,B) :- r(A,M), s(M,B)"},
		},
		{
			"q(X) :- r(X,Z), s(Z), t(X)",
			[]string{"v1(A) :- r(A,B), s(B)", "v2(A) :- t(A)"},
		},
		{
			"q(X,Y) :- e(X,M), e(M,Y)",
			[]string{"v(A,B) :- e(A,B)"},
		},
		{
			"q(X) :- e(X,Y), e(Y,X)",
			[]string{"v(A,B) :- e(A,B)", "w(A) :- e(A,A)"},
		},
	}
	for _, c := range cases {
		q := mustQ(c.q)
		qs := make([]*cq.Query, len(c.views))
		for i, s := range c.views {
			qs[i] = mustQ(s)
		}
		vs := core.MustNewViewSet(qs...)
		mu, _, err := Rewrite(q, vs, Options{VerifyCandidates: true})
		if err != nil {
			t.Fatal(err)
		}
		bu, _, err := bucket.Rewrite(q, vs, Options2Bucket())
		if err != nil {
			t.Fatal(err)
		}
		me, _ := core.ExpandUnion(mu, vs)
		be, _ := core.ExpandUnion(bu, vs)
		if !containment.UnionContainedInUnion(me, be) || !containment.UnionContainedInUnion(be, me) {
			t.Errorf("MiniCon and Bucket disagree on %q:\nMiniCon: %v\nBucket: %v", c.q, mu, bu)
		}
	}
}

// Options2Bucket returns default bucket options for the agreement test.
func Options2Bucket() bucket.Options { return bucket.Options{} }

func TestRewriteEvaluationMatchesDirect(t *testing.T) {
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "m"})
	base.Insert("r", storage.Tuple{"b", "n"})
	base.Insert("s", storage.Tuple{"m", "x"})
	base.Insert("t", storage.Tuple{"a"})
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y), t(X)")
	views := []*cq.Query{
		mustQ("v1(A,B,C) :- r(A,B), s(B,C)"),
		mustQ("v2(A) :- t(A)"),
	}
	vs := core.MustNewViewSet(views...)
	u, _, err := Rewrite(q, vs, Options{VerifyCandidates: true})
	if err != nil {
		t.Fatal(err)
	}
	viewDB, _ := datalog.MaterializeViews(base, views)
	got := datalog.EvalUnion(viewDB, u)
	want := datalog.EvalQuery(base, q)
	if !storage.TuplesEqual(got, want) {
		t.Fatalf("rewriting answers %v, direct %v", got, want)
	}
}

func TestRewriteEmptyWhenNoMCDs(t *testing.T) {
	q := mustQ("q(X) :- hidden(X)")
	vs := viewSet("v(A) :- r(A)")
	u, st, err := Rewrite(q, vs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 0 || st.MCDs != 0 {
		t.Fatalf("expected empty result: %v %+v", u, st)
	}
}

func TestRewriteInvalidQuery(t *testing.T) {
	bad := &cq.Query{Head: cq.NewAtom("q", cq.Var("X"))}
	if _, _, err := Rewrite(bad, viewSet("v(A) :- r(A)"), Options{}); err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestRewriteWithComparisons(t *testing.T) {
	q := mustQ("q(X) :- r(X,Y), X > 3")
	vs := viewSet("v(A,B) :- r(A,B)")
	u, _, err := Rewrite(q, vs, Options{VerifyCandidates: true, KeepComparisons: true})
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() == 0 || len(u.Queries[0].Comparisons) != 1 {
		t.Fatalf("rewriting = %v", u)
	}
}
