// Package minicon implements the MiniCon algorithm (Pottinger & Halevy) for
// rewriting conjunctive queries using views, producing a maximally-contained
// rewriting as a union of conjunctive queries.
//
// MiniCon improves on the Bucket algorithm by reasoning, at coverage time,
// about how a view interacts with the *whole* query: when a query variable
// is mapped to an existential view variable, every query subgoal mentioning
// that variable must be covered by the same view usage. The resulting
// MiniCon Descriptions (MCDs) combine only in pairwise-disjoint fashion,
// which removes the bucket cartesian product — the effect measured by the
// F1–F3 experiments.
package minicon

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/cq"
)

// MCD is a MiniCon Description: one way of using a view to cover a set of
// query subgoals, satisfying the MiniCon property.
type MCD struct {
	// View is the original view definition.
	View *cq.Query
	// view is the fresh-renamed working copy used by this MCD.
	view *cq.Query
	// viewSub equates view variables (the head homomorphism h), binding
	// variables to other view variables or constants.
	viewSub cq.Subst
	// phi maps query variable names to view terms (of the working copy).
	phi map[string]cq.Term
	// covers is the sorted set of covered query subgoal indices.
	covers []int
	// exposedRoots marks view variable roots that are distinguished.
	exposedRoots map[string]bool
}

// Covers returns the covered subgoal indices (sorted).
func (m *MCD) Covers() []int {
	out := make([]int, len(m.covers))
	copy(out, m.covers)
	return out
}

// clone deep-copies the MCD's mutable state (the working view copy is
// shared — it is never mutated after renaming).
func (m *MCD) clone() *MCD {
	c := &MCD{
		View:         m.View,
		view:         m.view,
		viewSub:      m.viewSub.Clone(),
		phi:          make(map[string]cq.Term, len(m.phi)),
		exposedRoots: make(map[string]bool, len(m.exposedRoots)),
	}
	for k, v := range m.phi {
		c.phi[k] = v
	}
	for k, v := range m.exposedRoots {
		c.exposedRoots[k] = v
	}
	return c
}

// String renders the MCD for diagnostics.
func (m *MCD) String() string {
	parts := make([]string, 0, len(m.phi))
	for x, t := range m.phi {
		parts = append(parts, x+"->"+m.viewSub.Walk(t).String())
	}
	sort.Strings(parts)
	covs := make([]string, len(m.covers))
	for i, c := range m.covers {
		covs[i] = strconv.Itoa(c)
	}
	return fmt.Sprintf("MCD(%s covers {%s} via {%s})", m.View.Name(), strings.Join(covs, ","), strings.Join(parts, ", "))
}

// key canonically identifies an MCD for deduplication.
func (m *MCD) key() string {
	var sb strings.Builder
	sb.WriteString(m.View.Name())
	sb.WriteByte('|')
	for _, c := range m.covers {
		sb.WriteString(strconv.Itoa(c))
		sb.WriteByte(',')
	}
	sb.WriteByte('|')
	// Render phi images canonically: constants and exposure classes.
	var binds []string
	for x, t := range m.phi {
		r := m.viewSub.Walk(t)
		tag := r.String()
		if r.IsVar() {
			// Variable names are fresh per working copy; canonicalise by
			// exposure and by grouping query vars that share an image.
			tag = "*"
			if m.exposedRoots[r.Lex] {
				tag = "+"
			}
			tag += groupOf(m, r)
		}
		binds = append(binds, x+":"+tag)
	}
	sort.Strings(binds)
	sb.WriteString(strings.Join(binds, ";"))
	return sb.String()
}

// groupOf returns a canonical group label: the sorted query vars sharing
// this view root.
func groupOf(m *MCD, root cq.Term) string {
	var xs []string
	for x, t := range m.phi {
		if m.viewSub.Walk(t) == root {
			xs = append(xs, x)
		}
	}
	sort.Strings(xs)
	return strings.Join(xs, "~")
}

// Stats reports the work done by one run.
type Stats struct {
	MCDs             int
	Combinations     int
	ContainmentTests int
	Kept             int
}

// Options configures the algorithm.
type Options struct {
	// VerifyCandidates re-checks each combined rewriting by unfolding and
	// containment. The MiniCon property makes combinations sound by
	// construction for pure conjunctive queries; verification is a safety
	// net (and is what the F1–F3 benches toggle to measure its cost).
	VerifyCandidates bool
	// SkipMinimizeUnion returns the raw union without subsumption pruning.
	SkipMinimizeUnion bool
	// KeepComparisons attaches the query's comparisons to candidates when
	// all their terms are exposed.
	KeepComparisons bool
	// MaxCombinations aborts combination enumeration (0 = unlimited).
	MaxCombinations int
}

// Rewrite runs MiniCon and returns the maximally-contained rewriting of q
// using the views, plus statistics.
func Rewrite(q *cq.Query, vs *core.ViewSet, opt Options) (*cq.Union, Stats, error) {
	var st Stats
	if err := q.Validate(); err != nil {
		return nil, st, err
	}
	mcds := FormMCDs(q, vs)
	st.MCDs = len(mcds)

	result := &cq.Union{}
	seen := make(map[string]bool)
	n := len(q.Body)
	byFirst := make([][]*MCD, n)
	for _, m := range mcds {
		byFirst[m.covers[0]] = append(byFirst[m.covers[0]], m)
	}

	var selected []*MCD
	covered := make([]bool, n)
	var combine func(next int) bool
	combine = func(next int) bool {
		for next < n && covered[next] {
			next++
		}
		if next == n {
			st.Combinations++
			if opt.MaxCombinations > 0 && st.Combinations > opt.MaxCombinations {
				return false
			}
			cand := buildCandidate(q, selected, opt)
			if cand == nil {
				return true
			}
			key := cand.CanonicalString()
			if seen[key] {
				return true
			}
			seen[key] = true
			if opt.VerifyCandidates {
				exp, err := core.Expand(cand, vs)
				st.ContainmentTests++
				if err != nil || !containment.Contained(exp, q) {
					return true
				}
			}
			result.Add(cand)
			st.Kept++
			return true
		}
		// MCDs combine only with pairwise disjoint covers (the MiniCon
		// combination property): pick an MCD whose first covered subgoal
		// is exactly `next`.
		for _, m := range byFirst[next] {
			ok := true
			for _, c := range m.covers {
				if covered[c] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, c := range m.covers {
				covered[c] = true
			}
			selected = append(selected, m)
			cont := combine(next + 1)
			selected = selected[:len(selected)-1]
			for _, c := range m.covers {
				covered[c] = false
			}
			if !cont {
				return false
			}
		}
		return true
	}
	combine(0)

	if !opt.SkipMinimizeUnion {
		result = containment.MinimizeUnion(result)
	}
	return result, st, nil
}

// FormMCDs enumerates the minimal MCDs of every view against q.
func FormMCDs(q *cq.Query, vs *core.ViewSet) []*MCD {
	headVars := make(map[string]bool)
	for _, t := range q.Head.Args {
		if t.IsVar() {
			headVars[t.Lex] = true
		}
	}
	// varGoals[x] = indices of subgoals containing variable x.
	varGoals := make(map[string][]int)
	for i, a := range q.Body {
		for _, t := range a.Args {
			if t.IsVar() {
				varGoals[t.Lex] = append(varGoals[t.Lex], i)
			}
		}
	}

	var out []*MCD
	dedup := make(map[string]bool)
	counter := 0
	for gi := range q.Body {
		for _, v := range vs.Views() {
			for ai := range v.Body {
				counter++
				fresh := cq.NewFreshener(fmt.Sprintf("M%d_", counter))
				fresh.Reserve(q)
				rv, _ := fresh.RenameApart(v)
				m := &MCD{
					View:         v,
					view:         rv,
					viewSub:      cq.NewSubst(),
					phi:          make(map[string]cq.Term),
					exposedRoots: make(map[string]bool),
				}
				for _, t := range rv.Head.Args {
					if t.IsVar() {
						m.exposedRoots[t.Lex] = true
					}
				}
				coveredSet := map[int]bool{}
				if !mapAtoms(m, q, gi, ai, headVars, coveredSet) {
					continue
				}
				for _, closed := range closeAll(m, q, headVars, varGoals, coveredSet) {
					k := closed.key()
					if !dedup[k] {
						dedup[k] = true
						out = append(out, closed)
					}
				}
			}
		}
	}
	return out
}

// mapAtoms extends the MCD so that query subgoal gi is covered by view atom
// ai. It records the coverage and reports failure when the MiniCon
// conditions are violated.
func mapAtoms(m *MCD, q *cq.Query, gi, ai int, headVars map[string]bool, covered map[int]bool) bool {
	g := q.Body[gi]
	a := m.view.Body[ai]
	if g.Pred != a.Pred || len(g.Args) != len(a.Args) {
		return false
	}
	for i := range g.Args {
		qt, vt := g.Args[i], a.Args[i]
		vimg := m.viewSub.Walk(vt)
		if qt.IsConst() {
			switch {
			case vimg.IsConst():
				if vimg != qt {
					return false
				}
			case m.exposed(vimg):
				// Bind the distinguished variable to the constant.
				if !m.equate(vimg, qt) {
					return false
				}
			default:
				return false // existential cannot enforce a constant
			}
			continue
		}
		// qt is a query variable.
		if prev, ok := m.phi[qt.Lex]; ok {
			if !m.equate(m.viewSub.Walk(prev), vimg) {
				return false
			}
		} else {
			m.phi[qt.Lex] = vimg
		}
	}
	covered[gi] = true
	return true
}

// exposed reports whether a view term is visible in the rewriting: a
// constant or a (root) variable marked distinguished.
func (m *MCD) exposed(t cq.Term) bool {
	t = m.viewSub.Walk(t)
	return t.IsConst() || m.exposedRoots[t.Lex]
}

// equate merges two view terms under viewSub, maintaining exposure marks.
func (m *MCD) equate(a, b cq.Term) bool {
	a, b = m.viewSub.Walk(a), m.viewSub.Walk(b)
	if a == b {
		return true
	}
	switch {
	case a.IsVar():
		m.viewSub[a.Lex] = b
		if m.exposedRoots[a.Lex] && b.IsVar() {
			m.exposedRoots[b.Lex] = true
		}
		return true
	case b.IsVar():
		m.viewSub[b.Lex] = a
		if m.exposedRoots[b.Lex] {
			// a is a constant: exposure preserved trivially.
		}
		return true
	default:
		return false // two distinct constants
	}
}

// closeAll enforces the MiniCon property exhaustively: every query
// variable mapped to a non-exposed view term must have all its subgoals
// covered by this MCD, and a query head variable must map to an exposed
// term. When a forced subgoal can be covered by several view atoms, every
// choice is explored (the choices lead to different — all minimal — MCDs).
// Duplicate closures are pruned by FormMCDs' key dedup.
func closeAll(m *MCD, q *cq.Query, headVars map[string]bool, varGoals map[string][]int, covered map[int]bool) []*MCD {
	// Find one violated obligation; if none, the MCD is closed.
	forcedGoal := -1
	for x, t := range m.phi {
		if m.exposed(t) {
			continue
		}
		if headVars[x] {
			return nil // unfixable: head variable on an existential
		}
		for _, gi := range varGoals[x] {
			if !covered[gi] {
				forcedGoal = gi
				break
			}
		}
		if forcedGoal >= 0 {
			break
		}
	}
	if forcedGoal < 0 {
		closed := m.clone()
		closed.covers = sortedKeys(covered)
		return []*MCD{closed}
	}
	// Branch over every view atom that can cover the forced subgoal.
	var out []*MCD
	for ai := range m.view.Body {
		if m.view.Body[ai].Pred != q.Body[forcedGoal].Pred {
			continue
		}
		branch := m.clone()
		branchCovered := make(map[int]bool, len(covered)+1)
		for k, v := range covered {
			branchCovered[k] = v
		}
		if !mapAtoms(branch, q, forcedGoal, ai, headVars, branchCovered) {
			continue
		}
		out = append(out, closeAll(branch, q, headVars, varGoals, branchCovered)...)
	}
	return out
}

// buildCandidate assembles a rewriting from a set of disjoint MCDs.
func buildCandidate(q *cq.Query, mcds []*MCD, opt Options) *cq.Query {
	fresh := cq.NewFreshener("F")
	fresh.Reserve(q)
	// eq accumulates equalities forced on query variables (shared view
	// images and constant bindings).
	eq := cq.NewSubst()
	body := make([]cq.Atom, 0, len(mcds))
	for _, m := range mcds {
		// inverse: view root -> query variables sharing it.
		inverse := make(map[cq.Term][]string)
		for x, t := range m.phi {
			r := m.viewSub.Walk(t)
			if r.IsVar() {
				inverse[r] = append(inverse[r], x)
			} else {
				// Query variable bound to a constant.
				if !eq.UnifyTerms(cq.Var(x), r) {
					return nil
				}
			}
		}
		for _, xs := range inverse {
			sort.Strings(xs)
		}
		args := make([]cq.Term, len(m.view.Head.Args))
		memo := make(map[cq.Term]cq.Term)
		for i, h := range m.view.Head.Args {
			r := m.viewSub.Walk(h)
			if r.IsConst() {
				args[i] = r
				continue
			}
			if t, ok := memo[r]; ok {
				args[i] = t
				continue
			}
			if xs := inverse[r]; len(xs) > 0 {
				rep := cq.Var(xs[0])
				for _, other := range xs[1:] {
					if !eq.UnifyTerms(cq.Var(other), rep) {
						return nil
					}
				}
				memo[r] = rep
				args[i] = rep
				continue
			}
			f := fresh.Fresh()
			memo[r] = f
			args[i] = f
		}
		body = append(body, cq.Atom{Pred: m.View.Name(), Args: args})
	}
	cand := &cq.Query{Head: q.Head, Body: body}
	if opt.KeepComparisons {
		cand.Comparisons = append(cand.Comparisons, q.Comparisons...)
	}
	cand = eq.Resolved().ApplyQuery(cand)
	if opt.KeepComparisons {
		// Keep only comparisons whose terms are exposed in the body.
		exposedT := make(map[cq.Term]bool)
		for _, a := range cand.Body {
			for _, t := range a.Args {
				exposedT[t] = true
			}
		}
		kept := cand.Comparisons[:0]
		for _, c := range cand.Comparisons {
			if (c.Left.IsConst() || exposedT[c.Left]) && (c.Right.IsConst() || exposedT[c.Right]) {
				kept = append(kept, c)
			}
		}
		cand.Comparisons = kept
	}
	if cand.Validate() != nil {
		return nil
	}
	return cand
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
