// Package integration cross-checks the whole stack: rewriting algorithms
// against each other and against direct evaluation, on seeded random
// workloads. These tests are the repository's strongest correctness
// evidence — every algorithm pair must agree on every seed.
package integration

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bucket"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/inverserules"
	"repro/internal/minicon"
	"repro/internal/storage"
	"repro/internal/workload"
)

// TestAlgorithmsAgreeOnData: on every seed, the Bucket MCR, the MiniCon
// MCR and the inverse-rules answers coincide when evaluated over the same
// view extents, and all are subsets of the direct answers.
func TestAlgorithmsAgreeOnData(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 2 + int(seed%3)
			q := workload.ChainQuery(n, true)
			views := workload.ChainViews(rng, n, true, workload.DefaultViewSpec(5))
			base := workload.ChainDatabase(rng, n, true, 30, 6)
			vs, err := core.NewViewSet(views...)
			if err != nil {
				t.Fatal(err)
			}
			viewDB, err := datalog.MaterializeViews(base, views)
			if err != nil {
				t.Fatal(err)
			}

			bu, _, err := bucket.Rewrite(q, vs, bucket.Options{MaxCombinations: 50000})
			if err != nil {
				t.Fatal(err)
			}
			mu, _, err := minicon.Rewrite(q, vs, minicon.Options{VerifyCandidates: true})
			if err != nil {
				t.Fatal(err)
			}
			bAns := datalog.EvalUnion(viewDB, bu)
			mAns := datalog.EvalUnion(viewDB, mu)
			iAns, err := inverserules.Answer(q, views, viewDB)
			if err != nil {
				t.Fatal(err)
			}
			direct := datalog.EvalQuery(base, q)

			if !storage.TuplesEqual(bAns, mAns) {
				t.Errorf("bucket %d answers vs minicon %d answers\nbucket: %v\nminicon: %v",
					len(bAns), len(mAns), bu, mu)
			}
			if !storage.TuplesEqual(mAns, iAns) {
				t.Errorf("minicon %d answers vs inverse rules %d answers", len(mAns), len(iAns))
			}
			if !subset(mAns, direct) {
				t.Error("certain answers not a subset of direct answers")
			}
		})
	}
}

// TestEquivalentRewritingPreservesAnswers: whenever the core engine finds
// a rewriting, evaluating it over view extents reproduces direct answers
// exactly — over several database draws per workload.
func TestEquivalentRewritingPreservesAnswers(t *testing.T) {
	found := 0
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		n := 2 + int(seed%4)
		q := workload.ChainQuery(n, true)
		views := workload.ChainViews(rng, n, true, workload.DefaultViewSpec(2*n+2))
		vs, err := core.NewViewSet(views...)
		if err != nil {
			t.Fatal(err)
		}
		rw := core.NewRewriter(vs).RewriteOne(q)
		if rw == nil {
			continue
		}
		found++
		for draw := 0; draw < 3; draw++ {
			base := workload.ChainDatabase(rng, n, true, 25, 5)
			viewDB, err := datalog.MaterializeViews(base, views)
			if err != nil {
				t.Fatal(err)
			}
			direct := datalog.EvalQuery(base, q)
			via := datalog.EvalQuery(viewDB, rw.Query)
			if !storage.TuplesEqual(direct, via) {
				t.Fatalf("seed %d draw %d: rewriting %v gives %d answers, direct %d",
					seed, draw, rw.Query, len(via), len(direct))
			}
		}
	}
	if found < 5 {
		t.Fatalf("too few rewritings found to be meaningful: %d", found)
	}
}

// TestStarWorkloadsAgree runs the same agreement checks on star queries.
func TestStarWorkloadsAgree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		n := 2 + int(seed%3)
		q := workload.StarQuery(n, true)
		spec := workload.ViewSpec{Count: 5, MinLen: 1, MaxLen: 2, ExposeEndpoints: true, ExposeProb: 1}
		views := workload.StarViews(rng, n, true, spec)
		base := workload.RandomDatabase(rng, starPreds(n), 2, 30, 6)
		vs, err := core.NewViewSet(views...)
		if err != nil {
			t.Fatal(err)
		}
		viewDB, err := datalog.MaterializeViews(base, views)
		if err != nil {
			t.Fatal(err)
		}
		bu, _, err := bucket.Rewrite(q, vs, bucket.Options{MaxCombinations: 50000})
		if err != nil {
			t.Fatal(err)
		}
		mu, _, err := minicon.Rewrite(q, vs, minicon.Options{VerifyCandidates: true})
		if err != nil {
			t.Fatal(err)
		}
		bAns := datalog.EvalUnion(viewDB, bu)
		mAns := datalog.EvalUnion(viewDB, mu)
		if !storage.TuplesEqual(bAns, mAns) {
			t.Errorf("seed %d: bucket and minicon disagree on star workload", seed)
		}
	}
}

// TestExpansionEquivalenceInvariant: for every rewriting any algorithm
// produces, the unfolding must be contained in the query (soundness), and
// for the core engine it must be equivalent.
func TestExpansionEquivalenceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 15; trial++ {
		n := 2 + trial%3
		q := workload.ChainQuery(n, true)
		views := workload.ChainViews(rng, n, true, workload.DefaultViewSpec(6))
		vs, err := core.NewViewSet(views...)
		if err != nil {
			t.Fatal(err)
		}
		mu, _, err := minicon.Rewrite(q, vs, minicon.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mu.Queries {
			exp, err := core.Expand(m, vs)
			if err != nil {
				t.Fatalf("expand %v: %v", m, err)
			}
			if !containment.Contained(exp, q) {
				t.Fatalf("unsound MCR member: %v", m)
			}
		}
		r := core.NewRewriter(vs)
		r.Opt.MaxResults = core.AllRewritings
		res, _ := r.Rewrite(q)
		for _, rw := range res {
			if !containment.Equivalent(rw.Expansion, q) {
				t.Fatalf("non-equivalent core rewriting: %v", rw.Query)
			}
		}
	}
}

func subset(a, b []storage.Tuple) bool {
	in := make(map[string]bool, len(b))
	for _, t := range b {
		in[t.Key()] = true
	}
	for _, t := range a {
		if !in[t.Key()] {
			return false
		}
	}
	return true
}

func starPreds(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("p%d", i+1)
	}
	return out
}
