package core

import (
	"fmt"

	"repro/internal/cq"
)

// Expand unfolds every view atom of q into the view's definition: the view
// head is unified with the atom's arguments, the view's existential
// variables are renamed apart, and the view's body and comparisons are
// spliced into the result. Atoms over predicates not in vs are left in
// place, so Expand works for partial rewritings too.
//
// Expand returns an error if a view is used with the wrong arity or if head
// unification fails on conflicting constants (such a rewriting is
// unsatisfiable).
func Expand(q *cq.Query, vs *ViewSet) (*cq.Query, error) {
	fresh := cq.NewFreshener("E")
	fresh.Reserve(q)
	theta := cq.NewSubst()
	var body []cq.Atom
	comps := make([]cq.Comparison, 0, len(q.Comparisons))
	comps = append(comps, q.Comparisons...)

	for _, a := range q.Body {
		v := vs.Lookup(a.Pred)
		if v == nil {
			body = append(body, a)
			continue
		}
		if v.Arity() != len(a.Args) {
			return nil, fmt.Errorf("core: view %s has arity %d but is used with %d arguments", v.Name(), v.Arity(), len(a.Args))
		}
		renamed, _ := fresh.RenameApart(v)
		for j := range a.Args {
			if !theta.UnifyTerms(renamed.Head.Args[j], a.Args[j]) {
				return nil, fmt.Errorf("core: cannot unify %s with head of view %s (conflicting constants)", a, v.Name())
			}
		}
		body = append(body, renamed.Body...)
		comps = append(comps, renamed.Comparisons...)
	}
	resolved := theta.Resolved()
	out := resolved.ApplyQuery(&cq.Query{Head: q.Head, Body: body, Comparisons: comps})
	return out, nil
}

// MustExpand is Expand that panics on error; for tests and examples.
func MustExpand(q *cq.Query, vs *ViewSet) *cq.Query {
	out, err := Expand(q, vs)
	if err != nil {
		panic(err)
	}
	return out
}

// ExpandUnion unfolds every member of a union.
func ExpandUnion(u *cq.Union, vs *ViewSet) (*cq.Union, error) {
	out := &cq.Union{}
	for _, m := range u.Queries {
		e, err := Expand(m, vs)
		if err != nil {
			return nil, err
		}
		out.Add(e)
	}
	return out, nil
}
