// Package core implements the primary contribution of "Answering Queries
// Using Views" (Levy, Mendelzon, Sagiv, Srivastava — PODS 1995): deciding
// whether a conjunctive query can be rewritten to use a set of views, and
// finding the rewritings.
//
// The engine enumerates view applications — homomorphisms from a view body
// into the (minimised) query body — and searches covers of the query's
// subgoals by applications. Every candidate is verified exactly by unfolding
// it (Expand) and testing equivalence with the query, so the output is
// always sound; for pure conjunctive queries the procedure is also complete,
// and every rewriting it returns respects the paper's bound of at most n
// subgoals for a query with n subgoals (Theorem R2 in DESIGN.md).
package core

import (
	"fmt"

	"repro/internal/cq"
)

// ViewSet is a named collection of view definitions. Views are conjunctive
// queries over base predicates; view definitions may not reference other
// views. Names must be distinct and must not collide with base predicates
// used in any view body.
type ViewSet struct {
	views  []*cq.Query
	byName map[string]*cq.Query
}

// NewViewSet validates and indexes a set of view definitions.
func NewViewSet(views ...*cq.Query) (*ViewSet, error) {
	vs := &ViewSet{byName: make(map[string]*cq.Query, len(views))}
	for _, v := range views {
		if err := vs.Add(v); err != nil {
			return nil, err
		}
	}
	return vs, nil
}

// MustNewViewSet is NewViewSet that panics on error; for tests and examples.
func MustNewViewSet(views ...*cq.Query) *ViewSet {
	vs, err := NewViewSet(views...)
	if err != nil {
		panic(err)
	}
	return vs
}

// Add validates and inserts one view definition.
func (vs *ViewSet) Add(v *cq.Query) error {
	if err := v.Validate(); err != nil {
		return fmt.Errorf("core: invalid view: %w", err)
	}
	name := v.Name()
	if _, dup := vs.byName[name]; dup {
		return fmt.Errorf("core: duplicate view name %s", name)
	}
	for _, a := range v.Body {
		if _, isView := vs.byName[a.Pred]; isView {
			return fmt.Errorf("core: view %s references view %s; views must be defined over base predicates", name, a.Pred)
		}
	}
	for _, existing := range vs.views {
		for _, a := range existing.Body {
			if a.Pred == name {
				return fmt.Errorf("core: view %s is used as a base predicate by view %s", name, existing.Name())
			}
		}
	}
	vs.views = append(vs.views, v)
	vs.byName[name] = v
	return nil
}

// Lookup returns the view with the given name, or nil.
func (vs *ViewSet) Lookup(name string) *cq.Query {
	if vs == nil {
		return nil
	}
	return vs.byName[name]
}

// Views returns the view definitions in insertion order.
func (vs *ViewSet) Views() []*cq.Query {
	out := make([]*cq.Query, len(vs.views))
	copy(out, vs.views)
	return out
}

// Len returns the number of views.
func (vs *ViewSet) Len() int { return len(vs.views) }

// Names returns the view names in insertion order.
func (vs *ViewSet) Names() []string {
	out := make([]string, len(vs.views))
	for i, v := range vs.views {
		out[i] = v.Name()
	}
	return out
}
