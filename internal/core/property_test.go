package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/containment"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Property: every rewriting found on random chain workloads expands to a
// query equivalent to the input, and respects the length bound.
func TestQuickRewritingsSoundAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(seed%4+4)%4 // 2..5
		q := workload.ChainQuery(n, true)
		views := workload.ChainViews(rng, n, true, workload.DefaultViewSpec(2*n))
		vs, err := NewViewSet(views...)
		if err != nil {
			return false
		}
		r := NewRewriter(vs)
		r.Opt.MaxResults = AllRewritings
		res, st := r.Rewrite(q)
		for _, rw := range res {
			if len(rw.Query.Body) > st.MinimizedBodyAtoms {
				return false
			}
			if !containment.Equivalent(rw.Expansion, q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: evaluating a found rewriting over materialised views returns
// exactly the direct answers (equivalent rewritings preserve semantics on
// every database).
func TestQuickRewritingEvaluationMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(seed%3+3)%3 // 2..4
		q := workload.ChainQuery(n, true)
		views := workload.ChainViews(rng, n, true, workload.DefaultViewSpec(2*n+2))
		vs, err := NewViewSet(views...)
		if err != nil {
			return false
		}
		rw := NewRewriter(vs).RewriteOne(q)
		if rw == nil {
			return true // nothing to check
		}
		base := workload.ChainDatabase(rng, n, true, 30, 6)
		viewDB, err := datalog.MaterializeViews(base, views)
		if err != nil {
			return false
		}
		direct := datalog.EvalQuery(base, q)
		viaViews := datalog.EvalQuery(viewDB, rw.Query)
		return storage.TuplesEqual(direct, viaViews)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Usable agrees with participation — if the rewriter finds a
// rewriting using view v, then v is usable.
func TestQuickUsableNecessary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(seed%3+3)%3
		q := workload.ChainQuery(n, true)
		views := workload.ChainViews(rng, n, true, workload.DefaultViewSpec(n+2))
		vs, err := NewViewSet(views...)
		if err != nil {
			return false
		}
		r := NewRewriter(vs)
		r.Opt.MaxResults = AllRewritings
		res, _ := r.Rewrite(q)
		for _, rw := range res {
			for _, a := range rw.Query.Body {
				v := vs.Lookup(a.Pred)
				if v != nil && !Usable(v, q) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: expansion is idempotent over base-only queries and inverts
// single-view bodies.
func TestQuickExpandFixpointOnBaseQueries(t *testing.T) {
	f := func(a, b, c uint8) bool {
		rng := rand.New(rand.NewSource(int64(a)<<16 | int64(b)<<8 | int64(c)))
		q := workload.RandomQuery(rng, 1+int(a)%4, 3, 0.5)
		vs, err := NewViewSet() // empty view set
		if err != nil {
			return false
		}
		exp, err := Expand(q, vs)
		if err != nil {
			return false
		}
		return exp.String() == q.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteOptionsDefaults(t *testing.T) {
	vs := MustNewViewSet(cq.MustParseQuery("v(A,B) :- r(A,B)"))
	r := NewRewriter(vs)
	q := cq.MustParseQuery("q(X,Y) :- r(X,Y)")
	res, _ := r.Rewrite(q)
	if len(res) != 1 {
		t.Fatalf("default MaxResults should yield one rewriting, got %d", len(res))
	}
}
