package core

import (
	"testing"

	"repro/internal/cq"
)

func TestMinimizeRewriting(t *testing.T) {
	vs := views("v1(A,B) :- r(A,B)", "v2(A,B) :- r(A,B), t(A)")
	q := mustQ("q(X,Y) :- r(X,Y)")
	// A redundant rewriting using both views.
	redundant := mustQ("q(X,Y) :- v1(X,Y), v1(X,W)")
	ok, err := VerifyRewriting(q, redundant, vs)
	if err != nil || !ok {
		t.Fatalf("redundant candidate should verify: %v %v", ok, err)
	}
	if LocallyMinimal(q, redundant, vs) {
		t.Fatal("redundant rewriting reported locally minimal")
	}
	min := MinimizeRewriting(q, redundant, vs)
	if len(min.Body) != 1 {
		t.Fatalf("minimised = %v", min)
	}
	if ok, _ := VerifyRewriting(q, min, vs); !ok {
		t.Fatal("minimised rewriting no longer verifies")
	}
	if !LocallyMinimal(q, min, vs) {
		t.Fatal("minimised rewriting not locally minimal")
	}
}

func TestGloballyMinimal(t *testing.T) {
	vs := views(
		"big(A,B) :- e(A,M), e(M,B)",
		"one(A,B) :- e(A,B)",
	)
	r := NewRewriter(vs)
	r.Opt.MaxResults = AllRewritings
	q := mustQ("q(X,Y) :- e(X,M), e(M,Y)")
	res, _ := r.Rewrite(q)
	min := GloballyMinimal(res)
	if len(min) == 0 {
		t.Fatal("no globally minimal rewriting")
	}
	for _, rw := range min {
		if len(rw.Query.Body) != 1 {
			t.Fatalf("globally minimal should use the packed view: %v", rw.Query)
		}
	}
	if GloballyMinimal(nil) != nil {
		t.Fatal("empty input should return nil")
	}
}

func TestBestShortening(t *testing.T) {
	// Views pack three subgoals into one atom: shortening 3 -> 1.
	vs := views("v(A,B) :- p1(A,M), p2(M,N), p3(N,B)")
	q := mustQ("q(X,Y) :- p1(X,M), p2(M,N), p3(N,Y)")
	s := BestShortening(q, vs)
	if !s.Found || s.QuerySubgoals != 3 || s.RewritingSubgoals != 1 {
		t.Fatalf("shortening = %+v", s)
	}
	// No views: nothing found.
	empty, _ := NewViewSet()
	s2 := BestShortening(q, empty)
	if s2.Found {
		t.Fatalf("shortening with no views = %+v", s2)
	}
}

func TestBestShorteningPartial(t *testing.T) {
	// Views cover two of three subgoals: partial rewriting shortens 3 -> 2.
	vs := views("v(A,B) :- p1(A,M), p2(M,B)")
	q := mustQ("q(X,Y) :- p1(X,M), p2(M,N), p3(N,Y)")
	s := BestShortening(q, vs)
	if !s.Found || s.RewritingSubgoals != 2 {
		t.Fatalf("shortening = %+v", s)
	}
}

func TestRewriteUnion(t *testing.T) {
	vs := views("v1(A,B) :- r(A,B)", "v2(A) :- s(A)")
	r := NewRewriter(vs)
	u := cq.NewUnion(
		mustQ("q(X) :- r(X,Y)"),
		mustQ("q(X) :- s(X)"),
		mustQ("q(X) :- hidden(X)"),
	)
	rewritten, failed := r.RewriteUnion(u)
	if rewritten.Len() != 2 || len(failed) != 1 {
		t.Fatalf("rewritten=%v failed=%v", rewritten, failed)
	}
	if failed[0].Body[0].Pred != "hidden" {
		t.Fatalf("wrong failure: %v", failed[0])
	}
}
