package core

import (
	"strings"
	"testing"

	"repro/internal/containment"
	"repro/internal/cq"
)

func mustQ(src string) *cq.Query { return cq.MustParseQuery(src) }

func views(srcs ...string) *ViewSet {
	vs := make([]*cq.Query, len(srcs))
	for i, s := range srcs {
		vs[i] = mustQ(s)
	}
	return MustNewViewSet(vs...)
}

func TestViewSetValidation(t *testing.T) {
	if _, err := NewViewSet(mustQ("v(X) :- r(X)"), mustQ("v(Y) :- s(Y)")); err == nil {
		t.Fatal("duplicate view name accepted")
	}
	if _, err := NewViewSet(mustQ("v(X) :- r(X)"), mustQ("w(Y) :- v(Y)")); err == nil {
		t.Fatal("view over view accepted")
	}
	if _, err := NewViewSet(mustQ("w(Y) :- v(Y)"), mustQ("v(X) :- r(X)")); err == nil {
		t.Fatal("view name colliding with base predicate accepted")
	}
	if _, err := NewViewSet(&cq.Query{Head: cq.NewAtom("v", cq.Var("X"))}); err == nil {
		t.Fatal("invalid view accepted")
	}
	vs := views("v1(X) :- r(X)", "v2(Y) :- s(Y)")
	if vs.Len() != 2 || vs.Lookup("v1") == nil || vs.Lookup("nope") != nil {
		t.Fatal("lookup/len wrong")
	}
	if names := vs.Names(); names[0] != "v1" || names[1] != "v2" {
		t.Fatalf("Names = %v", names)
	}
	var nilVS *ViewSet
	if nilVS.Lookup("v1") != nil {
		t.Fatal("nil ViewSet lookup should be nil")
	}
}

func TestExpandBasic(t *testing.T) {
	vs := views("v(A,B) :- r(A,C), s(C,B)")
	q := mustQ("q(X,Y) :- v(X,Y)")
	exp := MustExpand(q, vs)
	if len(exp.Body) != 2 || exp.Body[0].Pred != "r" || exp.Body[1].Pred != "s" {
		t.Fatalf("expansion = %v", exp)
	}
	if !containment.Equivalent(exp, mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")) {
		t.Fatalf("expansion wrong: %v", exp)
	}
}

func TestExpandFreshensExistentials(t *testing.T) {
	vs := views("v(A) :- r(A,C)")
	q := mustQ("q(X,Y) :- v(X), v(Y)")
	exp := MustExpand(q, vs)
	if len(exp.Body) != 2 {
		t.Fatalf("expansion = %v", exp)
	}
	// The two copies of C must be distinct variables.
	if exp.Body[0].Args[1] == exp.Body[1].Args[1] {
		t.Fatalf("existential not freshened: %v", exp)
	}
}

func TestExpandRepeatedHeadVar(t *testing.T) {
	// v(A,A) forces its two arguments equal; expanding v(X,Y) must unify
	// X and Y throughout the query.
	vs := views("v(A,A) :- r(A)")
	q := mustQ("q(X,Y) :- v(X,Y), s(X), t(Y)")
	exp := MustExpand(q, vs)
	if !containment.Equivalent(exp, mustQ("q(X,X) :- r(X), s(X), t(X)")) {
		t.Fatalf("expansion = %v", exp)
	}
}

func TestExpandConstantPropagation(t *testing.T) {
	vs := views("v(A) :- r(A,5)")
	q := mustQ("q(X) :- v(X), s(X)")
	exp := MustExpand(q, vs)
	if !containment.Equivalent(exp, mustQ("q(X) :- r(X,5), s(X)")) {
		t.Fatalf("expansion = %v", exp)
	}
}

func TestExpandConstantConflict(t *testing.T) {
	vs := views("v(3) :- r(3)")
	q := mustQ("q(X) :- v(5), s(X)")
	if _, err := Expand(q, vs); err == nil {
		t.Fatal("conflicting constants accepted")
	}
}

func TestExpandArityMismatch(t *testing.T) {
	vs := views("v(A) :- r(A)")
	if _, err := Expand(mustQ("q(X) :- v(X,X)"), vs); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestExpandComparisonsCarried(t *testing.T) {
	vs := views("v(A) :- r(A,B), B > 3")
	q := mustQ("q(X) :- v(X), X < 7")
	exp := MustExpand(q, vs)
	if len(exp.Comparisons) != 2 {
		t.Fatalf("comparisons = %v", exp.Comparisons)
	}
}

func TestExpandLeavesBaseAtoms(t *testing.T) {
	vs := views("v(A) :- r(A)")
	q := mustQ("q(X) :- v(X), base(X,Y)")
	exp := MustExpand(q, vs)
	found := false
	for _, a := range exp.Body {
		if a.Pred == "base" {
			found = true
		}
	}
	if !found {
		t.Fatalf("base atom dropped: %v", exp)
	}
}

func TestExpandUnion(t *testing.T) {
	vs := views("v(A) :- r(A)")
	u := cq.NewUnion(mustQ("q(X) :- v(X)"), mustQ("q(X) :- s(X)"))
	eu, err := ExpandUnion(u, vs)
	if err != nil || eu.Len() != 2 {
		t.Fatalf("ExpandUnion = %v, %v", eu, err)
	}
	if eu.Queries[0].Body[0].Pred != "r" {
		t.Fatalf("first member not expanded: %v", eu.Queries[0])
	}
}

func TestApplicationsBasic(t *testing.T) {
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	v := mustQ("v(A,B) :- r(A,C), s(C,B)")
	apps := Applications(v, q)
	if len(apps) != 1 {
		t.Fatalf("applications = %v", apps)
	}
	ap := apps[0]
	if !ap.Valid {
		t.Fatalf("application invalid: %s", ap.Reason)
	}
	if ap.Atom.String() != "v(X,Y)" {
		t.Fatalf("atom = %v", ap.Atom)
	}
	if len(ap.Covers) != 2 {
		t.Fatalf("covers = %v", ap.Covers)
	}
}

func TestApplicationsInvalidHiddenJoin(t *testing.T) {
	// C is existential in the view but the query needs Z outside r's atom.
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	v := mustQ("v(A) :- r(A,C)")
	apps := Applications(v, q)
	if len(apps) != 1 {
		t.Fatalf("applications = %v", apps)
	}
	if apps[0].Valid {
		t.Fatal("application hiding the join variable reported valid")
	}
	if !strings.Contains(apps[0].Reason, "needed term") {
		t.Fatalf("reason = %q", apps[0].Reason)
	}
}

func TestApplicationsInvalidConstant(t *testing.T) {
	q := mustQ("q(X) :- r(X,5)")
	v := mustQ("v(A) :- r(A,C)")
	apps := Applications(v, q)
	if len(apps) != 1 || apps[0].Valid {
		t.Fatalf("existential-on-constant should be invalid: %v", apps)
	}
}

func TestApplicationsCollapseExistentials(t *testing.T) {
	q := mustQ("q(X) :- r(X,Z,Z)")
	v := mustQ("v(A) :- r(A,C,D)")
	apps := Applications(v, q)
	if len(apps) != 1 || apps[0].Valid {
		t.Fatalf("collapsed existentials should be invalid: %v", apps)
	}
}

func TestUsable(t *testing.T) {
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	if !Usable(mustQ("v(A,C) :- r(A,C)"), q) {
		t.Fatal("view exposing join var should be usable")
	}
	if Usable(mustQ("v(A) :- r(A,C)"), q) {
		t.Fatal("view hiding join var should not be usable")
	}
	if Usable(mustQ("v(A) :- t(A)"), q) {
		t.Fatal("view over unrelated predicate should not be usable")
	}
}

func TestRewriteSingleViewExact(t *testing.T) {
	vs := views("v(A,B) :- r(A,C), s(C,B)")
	r := NewRewriter(vs)
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	rw := r.RewriteOne(q)
	if rw == nil {
		t.Fatal("no rewriting found")
	}
	if rw.Query.String() != "q(X,Y) :- v(X,Y)." {
		t.Fatalf("rewriting = %v", rw.Query)
	}
	if !rw.Complete {
		t.Fatal("complete rewriting flagged partial")
	}
	ok, err := VerifyRewriting(q, rw.Query, vs)
	if err != nil || !ok {
		t.Fatalf("VerifyRewriting = %v, %v", ok, err)
	}
}

func TestRewriteTwoViewJoin(t *testing.T) {
	vs := views("v1(A,C) :- r(A,C)", "v2(C,B) :- s(C,B)")
	r := NewRewriter(vs)
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	rw := r.RewriteOne(q)
	if rw == nil {
		t.Fatal("no rewriting found")
	}
	if len(rw.Query.Body) != 2 {
		t.Fatalf("rewriting = %v", rw.Query)
	}
	if !containment.Equivalent(rw.Expansion, q) {
		t.Fatal("expansion not equivalent")
	}
}

func TestRewriteNoneExists(t *testing.T) {
	// The view hides the join variable: no equivalent rewriting.
	vs := views("v(A) :- r(A,C)", "w(B) :- s(C,B)")
	r := NewRewriter(vs)
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	if r.Exists(q) {
		t.Fatal("rewriting found where none exists")
	}
}

func TestRewriteRequiresEquivalenceNotJustContainment(t *testing.T) {
	// View is strictly stronger than the query atom: using it would give a
	// contained but not equivalent rewriting.
	vs := views("v(A) :- r(A,A)")
	r := NewRewriter(vs)
	q := mustQ("q(X) :- r(X,Y)")
	if r.Exists(q) {
		t.Fatal("non-equivalent rewriting accepted")
	}
}

func TestRewriteLengthBound(t *testing.T) {
	// Paper R2: a rewriting, if it exists, needs at most n subgoals.
	vs := views(
		"v1(A,B) :- e(A,B)",
		"v2(A,B,C) :- e(A,B), e(B,C)",
	)
	r := NewRewriter(vs)
	r.Opt.MaxResults = AllRewritings
	q := mustQ("q(X,W) :- e(X,Y), e(Y,Z), e(Z,W)")
	res, _ := r.Rewrite(q)
	if len(res) == 0 {
		t.Fatal("no rewritings found")
	}
	for _, rw := range res {
		if len(rw.Query.Body) > len(q.Body) {
			t.Fatalf("rewriting exceeds paper bound: %v", rw.Query)
		}
		if !containment.Equivalent(rw.Expansion, q) {
			t.Fatalf("unsound rewriting: %v", rw.Query)
		}
	}
}

func TestRewriteMinimizationEnablesRewriting(t *testing.T) {
	// The query has a redundant atom; only after minimisation does the
	// single view cover the whole body.
	vs := views("v(A,B) :- r(A,B)")
	q := mustQ("q(X,Y) :- r(X,Y), r(X,Z)")
	r := NewRewriter(vs)
	rw := r.RewriteOne(q)
	if rw == nil {
		t.Fatal("no rewriting found on redundant query")
	}
	if rw.Query.String() != "q(X,Y) :- v(X,Y)." {
		t.Fatalf("rewriting = %v", rw.Query)
	}
	// With minimisation disabled, the same rewriting may be missed.
	r2 := NewRewriter(vs)
	r2.Opt.SkipMinimize = true
	rw2 := r2.RewriteOne(q)
	if rw2 != nil && len(rw2.Query.Body) > len(q.Body) {
		t.Fatalf("bound violated without minimisation: %v", rw2.Query)
	}
}

func TestRewritePartial(t *testing.T) {
	// Views cover only the r-atom; a partial rewriting keeps s.
	vs := views("v(A,C) :- r(A,C)")
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	r := NewRewriter(vs)
	if r.Exists(q) {
		t.Fatal("complete rewriting should not exist")
	}
	r.Opt.AllowPartial = true
	rw := r.RewriteOne(q)
	if rw == nil {
		t.Fatal("partial rewriting not found")
	}
	if rw.Complete {
		t.Fatal("partial rewriting flagged complete")
	}
	preds := map[string]bool{}
	for _, a := range rw.Query.Body {
		preds[a.Pred] = true
	}
	if !preds["v"] || !preds["s"] {
		t.Fatalf("partial rewriting shape wrong: %v", rw.Query)
	}
}

func TestRewritePartialNeverAllBase(t *testing.T) {
	vs := views("v(A) :- t(A)")
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	r := NewRewriter(vs)
	r.Opt.AllowPartial = true
	r.Opt.MaxResults = AllRewritings
	res, _ := r.Rewrite(q)
	for _, rw := range res {
		hasView := false
		for _, a := range rw.Query.Body {
			if vs.Lookup(a.Pred) != nil {
				hasView = true
			}
		}
		if !hasView {
			t.Fatalf("all-base candidate returned: %v", rw.Query)
		}
	}
}

func TestRewriteWithComparisons(t *testing.T) {
	vs := views("v(A) :- r(A,B), A > 3")
	r := NewRewriter(vs)
	q := mustQ("q(X) :- r(X,Y), X > 3")
	rw := r.RewriteOne(q)
	if rw == nil {
		t.Fatal("no rewriting with matching comparisons")
	}
	if rw.Query.String() != "q(X) :- v(X)." {
		t.Fatalf("rewriting = %v", rw.Query)
	}
}

func TestRewriteKeepComparisons(t *testing.T) {
	// The view does not enforce X>3; the rewriting must re-assert it.
	vs := views("v(A) :- r(A,B)")
	q := mustQ("q(X) :- r(X,Y), X > 3")
	r := NewRewriter(vs)
	if r.Exists(q) {
		t.Fatal("rewriting without comparisons should fail")
	}
	r.Opt.KeepComparisons = true
	rw := r.RewriteOne(q)
	if rw == nil {
		t.Fatal("KeepComparisons rewriting not found")
	}
	if len(rw.Query.Comparisons) != 1 {
		t.Fatalf("rewriting = %v", rw.Query)
	}
}

func TestRewriteViewWithStrongerComparisonRejected(t *testing.T) {
	vs := views("v(A) :- r(A), A > 5")
	r := NewRewriter(vs)
	r.Opt.KeepComparisons = true
	q := mustQ("q(X) :- r(X), X > 3")
	if r.Exists(q) {
		t.Fatal("view with stronger filter accepted as equivalent")
	}
}

func TestRewriteMultipleResultsSorted(t *testing.T) {
	vs := views(
		"big(A,B) :- e(A,M), e(M,B)",
		"one(A,B) :- e(A,B)",
	)
	r := NewRewriter(vs)
	r.Opt.MaxResults = AllRewritings
	q := mustQ("q(X,Y) :- e(X,M), e(M,Y)")
	res, st := r.Rewrite(q)
	if len(res) < 2 {
		t.Fatalf("want >= 2 rewritings, got %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if len(res[i-1].Query.Body) > len(res[i].Query.Body) {
			t.Fatal("results not sorted by body length")
		}
	}
	if st.RewritingsFound != len(res) || st.CandidatesTried < len(res) {
		t.Fatalf("stats inconsistent: %+v", st)
	}
}

func TestRewriteStats(t *testing.T) {
	vs := views("v(A,B) :- r(A,C), s(C,B)")
	r := NewRewriter(vs)
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	_, st := r.Rewrite(q)
	if st.Applications == 0 || st.ValidApplications == 0 || st.MinimizedBodyAtoms != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRewriteHeadConstants(t *testing.T) {
	vs := views("v(A,B) :- r(A,B)")
	r := NewRewriter(vs)
	q := mustQ("q(X,c) :- r(X,Y)")
	rw := r.RewriteOne(q)
	if rw == nil {
		t.Fatal("no rewriting for head-constant query")
	}
	if rw.Query.Head.Args[1] != cq.Const("c") {
		t.Fatalf("head constant lost: %v", rw.Query)
	}
}

func TestRewriteSelfJoinViews(t *testing.T) {
	// Query is a triangle; view is an edge pair. Rewriting needs three
	// applications of the same view with different argument bindings.
	vs := views("v(A,B) :- e(A,B)")
	r := NewRewriter(vs)
	q := mustQ("q(X) :- e(X,Y), e(Y,Z), e(Z,X)")
	rw := r.RewriteOne(q)
	if rw == nil {
		t.Fatal("triangle rewriting not found")
	}
	if len(rw.Query.Body) != 3 {
		t.Fatalf("rewriting = %v", rw.Query)
	}
}
