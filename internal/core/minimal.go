package core

import (
	"repro/internal/containment"
	"repro/internal/cq"
)

// This file implements the paper's R4 material on minimal rewritings: a
// rewriting is *locally minimal* if no proper subset of its subgoals is
// itself an equivalent rewriting, and *globally minimal* if no equivalent
// rewriting over the same views has fewer subgoals. Locally minimal
// rewritings are the useful ones in practice — dropping a redundant view
// subgoal only removes a join — while global minimality is the yardstick
// for how much a view set can shorten a query.

// LocallyMinimal reports whether rw cannot lose any subgoal and stay an
// equivalent rewriting of q.
func LocallyMinimal(q *cq.Query, rw *cq.Query, vs *ViewSet) bool {
	_, changed := shrinkOnce(q, rw, vs)
	return !changed
}

// MinimizeRewriting greedily removes redundant subgoals from a verified
// rewriting until it is locally minimal. The result is equivalent to the
// input rewriting (and therefore to q).
func MinimizeRewriting(q *cq.Query, rw *cq.Query, vs *ViewSet) *cq.Query {
	cur := rw.Clone()
	for {
		next, changed := shrinkOnce(q, cur, vs)
		if !changed {
			return cur
		}
		cur = next
	}
}

// shrinkOnce tries to drop one subgoal of rw while preserving equivalence
// with q; it reports whether it succeeded.
func shrinkOnce(q, rw *cq.Query, vs *ViewSet) (*cq.Query, bool) {
	if len(rw.Body) <= 1 {
		return rw, false
	}
	for i := range rw.Body {
		cand := rw.Clone()
		cand.Body = append(cand.Body[:i], cand.Body[i+1:]...)
		if cand.Validate() != nil {
			continue
		}
		ok, err := VerifyRewriting(q, cand, vs)
		if err == nil && ok {
			return cand, true
		}
	}
	return rw, false
}

// GloballyMinimal filters a result set down to the rewritings whose body
// length equals the minimum over the set. With an exhaustive result set
// (Options.MaxResults = AllRewritings) these are the globally minimal
// rewritings.
func GloballyMinimal(results []*Rewriting) []*Rewriting {
	if len(results) == 0 {
		return nil
	}
	best := len(results[0].Query.Body)
	for _, r := range results {
		if len(r.Query.Body) < best {
			best = len(r.Query.Body)
		}
	}
	var out []*Rewriting
	for _, r := range results {
		if len(r.Query.Body) == best {
			out = append(out, r)
		}
	}
	return out
}

// Shortening reports how much the best rewriting shortens the query: the
// subgoal counts of the minimised query and of the shortest equivalent
// rewriting (complete or partial), and whether views help at all. This is
// the paper's motivation for partial rewritings — replacing a group of
// subgoals by one view atom.
type Shortening struct {
	QuerySubgoals     int
	RewritingSubgoals int
	// Found reports whether any rewriting exists.
	Found bool
}

// BestShortening searches for the shortest rewriting (allowing partial
// rewritings) and reports the achieved reduction.
func BestShortening(q *cq.Query, vs *ViewSet) Shortening {
	qm := containment.Minimize(q)
	r := NewRewriter(vs)
	r.Opt.AllowPartial = true
	r.Opt.MaxResults = AllRewritings
	results, _ := r.Rewrite(q)
	s := Shortening{QuerySubgoals: len(qm.Body)}
	for _, rw := range results {
		min := MinimizeRewriting(q, rw.Query, vs)
		if !s.Found || len(min.Body) < s.RewritingSubgoals {
			s.Found = true
			s.RewritingSubgoals = len(min.Body)
		}
	}
	return s
}

// RewriteUnion rewrites every member of a union of conjunctive queries,
// returning a union of rewritings and the members that could not be
// rewritten. A UCQ has an equivalent view-based rewriting iff every member
// does (members subsumed by other members should be removed first with
// containment.MinimizeUnion).
func (r *Rewriter) RewriteUnion(u *cq.Union) (rewritten *cq.Union, failed []*cq.Query) {
	rewritten = &cq.Union{}
	for _, m := range u.Queries {
		rw := r.RewriteOne(m)
		if rw == nil {
			failed = append(failed, m)
			continue
		}
		rewritten.Add(rw.Query)
	}
	return rewritten, failed
}
