package core

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/containment"
	"repro/internal/cq"
)

// Application is one way of using a view in a rewriting of a query: a full
// homomorphism Phi from the view's body into the query's body. The induced
// rewriting subgoal is Atom = v(Phi(head args)); Covers lists the indices of
// the query body atoms that the view's body lands on.
//
// An application is Valid when it can participate in an equivalent
// rewriting of a minimised query: every view variable mapped to a "needed"
// query term (a head term, a term of an uncovered atom, or a comparison
// term) must be distinguished in the view, no view existential may land on
// a constant, and distinct existentials may not be collapsed onto the same
// term — otherwise the unfolding loses joins or constants that the query
// requires. Invalid applications are still recorded (the usability analysis
// reports why a view cannot help).
type Application struct {
	View   *cq.Query
	Phi    cq.Subst
	Atom   cq.Atom
	Covers []int
	Valid  bool
	// Reason explains Valid=false; empty when valid.
	Reason string
}

// Key identifies the application up to the parts that matter for candidate
// generation (the rewriting atom and the covered set).
func (ap Application) Key() string {
	parts := make([]string, 0, len(ap.Covers)+1)
	parts = append(parts, ap.Atom.String())
	for _, c := range ap.Covers {
		parts = append(parts, strconv.Itoa(c))
	}
	return strings.Join(parts, "|")
}

// Applications enumerates the applications of view v to query q. The query
// should normally be minimised first (see Rewriter); the enumeration is
// deterministic.
func Applications(v, q *cq.Query) []Application {
	var out []Application
	seen := make(map[string]bool)
	containment.FindBodyMappings(v, q, nil, func(m containment.Mapping) bool {
		ap := buildApplication(v, q, m)
		k := ap.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, ap)
		}
		return true
	})
	return out
}

func buildApplication(v, q *cq.Query, m containment.Mapping) Application {
	phi := m.Clone()
	// Covered atoms: indices of q body atoms equal to the image of some
	// view body atom.
	covered := make(map[int]bool)
	for _, va := range v.Body {
		img := phi.ApplyAtom(va)
		for i, qa := range q.Body {
			if qa.Equal(img) {
				covered[i] = true
			}
		}
	}
	covers := make([]int, 0, len(covered))
	for i := range covered {
		covers = append(covers, i)
	}
	sort.Ints(covers)

	atom := phi.ApplyAtom(cq.Atom{Pred: v.Name(), Args: v.Head.Args})
	ap := Application{View: v, Phi: phi, Atom: atom, Covers: covers, Valid: true}
	ap.Valid, ap.Reason = checkApplication(v, q, phi, covered)
	return ap
}

// checkApplication enforces the distinguished-variable conditions described
// on Application.
func checkApplication(v, q *cq.Query, phi cq.Subst, covered map[int]bool) (bool, string) {
	distinguished := make(map[string]bool)
	for _, t := range v.Head.Args {
		if t.IsVar() {
			distinguished[t.Lex] = true
		}
	}
	// Needed terms of q: head terms and terms of uncovered atoms. Terms
	// appearing only in comparisons are deliberately not "needed" here —
	// a view may satisfy a comparison internally without exposing the
	// compared column; the final equivalence verification decides.
	needed := make(map[cq.Term]bool)
	for _, t := range q.Head.Args {
		needed[t] = true
	}
	for i, a := range q.Body {
		if covered[i] {
			continue
		}
		for _, t := range a.Args {
			needed[t] = true
		}
	}

	imageOf := make(map[cq.Term]string) // q term -> existential view var landing on it
	for _, x := range v.Vars() {
		if distinguished[x.Lex] {
			continue
		}
		img, bound := phi[x.Lex]
		if !bound {
			continue // view variable only in comparisons with no body occurrence cannot happen for safe views
		}
		if img.IsConst() {
			return false, "existential " + x.Lex + " lands on constant " + img.String()
		}
		if needed[img] {
			return false, "existential " + x.Lex + " lands on needed term " + img.String()
		}
		if prev, dup := imageOf[img]; dup && prev != x.Lex {
			return false, "existentials " + prev + " and " + x.Lex + " collapse onto " + img.String()
		}
		imageOf[img] = x.Lex
	}
	// Distinct distinguished variables may collapse (the view atom then has
	// a repeated argument) — allowed; the equivalence test decides.
	return true, ""
}

// Usable reports whether view v has at least one valid application to
// (minimised) q. This is the operational usability test of the paper: a
// view with no valid application cannot occur in any equivalent complete
// rewriting of a minimised query. Deciding usability is NP-complete in the
// size of the view (R3); this implementation backtracks over body mappings
// and stops at the first valid application.
func Usable(v, q *cq.Query) bool {
	qm := containment.Minimize(q)
	found := false
	containment.FindBodyMappings(v, qm, nil, func(m containment.Mapping) bool {
		ap := buildApplication(v, qm, m)
		if ap.Valid {
			found = true
			return false
		}
		return true
	})
	return found
}
