package core

import (
	"sort"

	"repro/internal/containment"
	"repro/internal/cq"
)

// Rewriting is a verified equivalent rewriting of a query: Query is the
// rewriting itself (its body uses view predicates, plus base predicates for
// partial rewritings), Expansion is its unfolding, which is equivalent to
// the input query.
type Rewriting struct {
	Query     *cq.Query
	Expansion *cq.Query
	// Complete reports whether the body uses view predicates only.
	Complete bool
}

// Options configures the rewriting search.
type Options struct {
	// MaxResults bounds the number of rewritings returned; 0 means 1.
	// Use AllRewritings to enumerate exhaustively.
	MaxResults int
	// AllowPartial admits rewritings that keep some of the query's own
	// base subgoals (the paper's partial rewritings, R4). Candidates
	// consisting solely of base atoms are never returned.
	AllowPartial bool
	// SkipMinimize disables the initial query minimisation. The search is
	// then still sound but may miss rewritings (completeness of the cover
	// enumeration relies on the query being a core); intended for the F6
	// ablation experiment.
	SkipMinimize bool
	// KeepComparisons attaches the query's comparison predicates to each
	// candidate when all their terms are exposed by the candidate's
	// subgoals, letting rewritings re-assert filters the views do not
	// enforce.
	KeepComparisons bool
}

// AllRewritings can be used as Options.MaxResults to enumerate every
// rewriting the search space contains.
const AllRewritings = int(^uint(0) >> 1)

// Stats reports work performed by one rewriting search.
type Stats struct {
	Applications       int // total applications enumerated
	ValidApplications  int
	CandidatesTried    int // covers generated
	EquivalenceChecks  int
	RewritingsFound    int
	MinimizedBodyAtoms int // body size of the minimised query
}

// Rewriter searches for equivalent rewritings of conjunctive queries using
// a view set. A Rewriter is safe for sequential reuse across queries.
type Rewriter struct {
	Views *ViewSet
	Opt   Options
	// Memo, when non-nil, memoises the equivalence checks performed while
	// verifying candidates, keyed by canonical query fingerprints. Sharing
	// one memo across searches lets repeated or α-equivalent candidates
	// skip the exponential containment test. The memo is safe for
	// concurrent use, so rewriters running in parallel may share it.
	Memo *containment.Memo
}

// NewRewriter builds a Rewriter over the given views with default options
// (first rewriting only, complete rewritings, minimisation on).
func NewRewriter(vs *ViewSet) *Rewriter {
	return &Rewriter{Views: vs}
}

// Rewrite returns verified equivalent rewritings of q, best-first by body
// length, together with search statistics. An empty slice means no
// rewriting exists within the configured search space.
func (r *Rewriter) Rewrite(q *cq.Query) ([]*Rewriting, Stats) {
	var st Stats
	limit := r.Opt.MaxResults
	if limit <= 0 {
		limit = 1
	}

	qm := q
	if !r.Opt.SkipMinimize {
		qm = containment.Minimize(q)
	}
	st.MinimizedBodyAtoms = len(qm.Body)

	apps := r.collectApplications(qm, &st)
	if len(apps) == 0 {
		return nil, st
	}

	// Index applications by lowest covered atom for the cover search.
	n := len(qm.Body)
	byAtom := make([][]Application, n)
	for _, ap := range apps {
		for _, c := range ap.Covers {
			byAtom[c] = append(byAtom[c], ap)
		}
	}

	var results []*Rewriting
	seen := make(map[string]bool)
	var selected []Application

	var search func(nextUncovered int, covered []bool, coveredCount int) bool
	search = func(nextUncovered int, covered []bool, coveredCount int) bool {
		for nextUncovered < n && covered[nextUncovered] {
			nextUncovered++
		}
		if nextUncovered == n {
			cand := r.buildCandidate(qm, selected)
			if cand == nil {
				return true
			}
			key := cand.CanonicalString()
			if seen[key] {
				return true
			}
			seen[key] = true
			st.CandidatesTried++
			if rw := r.verify(qm, cand, &st); rw != nil {
				results = append(results, rw)
				if len(results) >= limit {
					return false
				}
			}
			return true
		}
		if len(selected) >= n {
			return true // R2 bound: no rewriting needs more than n subgoals
		}
		for _, ap := range byAtom[nextUncovered] {
			newlyCovered := make([]int, 0, len(ap.Covers))
			for _, c := range ap.Covers {
				if !covered[c] {
					covered[c] = true
					newlyCovered = append(newlyCovered, c)
				}
			}
			selected = append(selected, ap)
			cont := search(nextUncovered+1, covered, coveredCount+len(newlyCovered))
			selected = selected[:len(selected)-1]
			for _, c := range newlyCovered {
				covered[c] = false
			}
			if !cont {
				return false
			}
		}
		return true
	}
	search(0, make([]bool, n), 0)

	sort.SliceStable(results, func(i, j int) bool {
		return len(results[i].Query.Body) < len(results[j].Query.Body)
	})
	st.RewritingsFound = len(results)
	return results, st
}

// RewriteOne returns the first rewriting found, or nil.
func (r *Rewriter) RewriteOne(q *cq.Query) *Rewriting {
	saved := r.Opt.MaxResults
	r.Opt.MaxResults = 1
	defer func() { r.Opt.MaxResults = saved }()
	res, _ := r.Rewrite(q)
	if len(res) == 0 {
		return nil
	}
	return res[0]
}

// Exists reports whether an equivalent rewriting of q exists within the
// configured search space. For pure conjunctive queries with complete
// rewritings this decides the paper's NP-complete existence problem (R3).
func (r *Rewriter) Exists(q *cq.Query) bool {
	return r.RewriteOne(q) != nil
}

func (r *Rewriter) collectApplications(qm *cq.Query, st *Stats) []Application {
	var apps []Application
	for _, v := range r.Views.Views() {
		for _, ap := range Applications(v, qm) {
			st.Applications++
			if ap.Valid {
				st.ValidApplications++
				apps = append(apps, ap)
			}
		}
	}
	if r.Opt.AllowPartial {
		// A "self application" keeps base atom i in the rewriting.
		for i, a := range qm.Body {
			apps = append(apps, Application{Atom: a, Covers: []int{i}, Valid: true})
		}
	}
	return apps
}

// buildCandidate assembles the rewriting query from selected applications.
// It returns nil when the candidate is structurally hopeless (unsafe head,
// or no view atom at all).
func (r *Rewriter) buildCandidate(qm *cq.Query, selected []Application) *cq.Query {
	body := make([]cq.Atom, 0, len(selected))
	usesView := false
	seen := make(map[string]bool)
	for _, ap := range selected {
		k := ap.Atom.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		body = append(body, ap.Atom)
		if ap.View != nil {
			usesView = true
		}
	}
	if !usesView {
		return nil
	}
	cand := &cq.Query{Head: qm.Head, Body: body}
	if r.Opt.KeepComparisons {
		exposed := make(map[cq.Term]bool)
		for _, a := range body {
			for _, t := range a.Args {
				exposed[t] = true
			}
		}
		for _, c := range qm.Comparisons {
			leftOK := c.Left.IsConst() || exposed[c.Left]
			rightOK := c.Right.IsConst() || exposed[c.Right]
			if leftOK && rightOK {
				cand.Comparisons = append(cand.Comparisons, c)
			}
		}
	}
	if cand.Validate() != nil {
		return nil
	}
	return cand
}

// verify unfolds the candidate and checks equivalence with the query.
func (r *Rewriter) verify(qm, cand *cq.Query, st *Stats) *Rewriting {
	exp, err := Expand(cand, r.Views)
	if err != nil {
		return nil
	}
	st.EquivalenceChecks++
	equivalent := false
	if r.Memo != nil {
		equivalent = r.Memo.Equivalent(exp, qm)
	} else {
		equivalent = containment.Equivalent(exp, qm)
	}
	if !equivalent {
		return nil
	}
	complete := true
	for _, a := range cand.Body {
		if r.Views.Lookup(a.Pred) == nil {
			complete = false
			break
		}
	}
	return &Rewriting{Query: cand, Expansion: exp, Complete: complete}
}

// VerifyRewriting checks, from scratch, that candidate is an equivalent
// rewriting of q over vs: it unfolds the candidate and tests equivalence.
// This is the paper's characterisation R1 and is exposed so that externally
// produced rewritings can be validated.
func VerifyRewriting(q, candidate *cq.Query, vs *ViewSet) (bool, error) {
	exp, err := Expand(candidate, vs)
	if err != nil {
		return false, err
	}
	return containment.Equivalent(exp, q), nil
}
