package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/workload"
)

// T1RewritingLengthBound validates the paper's R2 bound empirically: every
// equivalent rewriting found on chain/star/random workloads has at most as
// many subgoals as the (minimised) query.
func T1RewritingLengthBound() Table {
	t := Table{
		ID:      "T1",
		Title:   "Rewriting-length bound (paper R2: rewriting needs <= n subgoals)",
		Columns: []string{"family", "n", "views", "rewritings", "max_len", "bound", "violations"},
	}
	type inst struct {
		family string
		q      *cq.Query
		views  []*cq.Query
	}
	var instances []inst
	rng := rand.New(rand.NewSource(1))
	for n := 2; n <= 7; n++ {
		q := workload.ChainQuery(n, true)
		views := workload.ChainViews(rng, n, true, workload.DefaultViewSpec(3*n))
		instances = append(instances, inst{"chain", q, views})
	}
	for n := 2; n <= 6; n++ {
		q := workload.StarQuery(n, true)
		views := workload.StarViews(rng, n, true, workload.DefaultViewSpec(3*n))
		instances = append(instances, inst{"star", q, views})
	}
	for i := 0; i < 5; i++ {
		q := workload.RandomQuery(rng, 3+i%3, 3, 0.5)
		views := workload.RandomViewsForQuery(rng, q, workload.DefaultViewSpec(10))
		instances = append(instances, inst{"random", q, views})
	}
	totalViolations := 0
	for _, in := range instances {
		vs, err := core.NewViewSet(in.views...)
		if err != nil {
			continue
		}
		r := core.NewRewriter(vs)
		r.Opt.MaxResults = core.AllRewritings
		res, st := r.Rewrite(in.q)
		maxLen, violations := 0, 0
		bound := st.MinimizedBodyAtoms
		for _, rw := range res {
			if len(rw.Query.Body) > maxLen {
				maxLen = len(rw.Query.Body)
			}
			if len(rw.Query.Body) > bound {
				violations++
			}
		}
		totalViolations += violations
		t.Rows = append(t.Rows, []string{
			in.family, itoa(len(in.q.Body)), itoa(len(in.views)),
			itoa(len(res)), itoa(maxLen), itoa(bound), itoa(violations),
		})
	}
	t.Notes = fmt.Sprintf("expected: violations = 0 everywhere (paper Theorem). total violations: %d", totalViolations)
	return t
}

// T2ExistenceScaling contrasts the easy and hard regimes of the existence /
// usability decision (paper R3, NP-completeness): subchain views decide
// greedily, clique-pattern views embed k-clique detection.
func T2ExistenceScaling() Table {
	t := Table{
		ID:      "T2",
		Title:   "Existence-search scaling (paper R3: NP-complete in view size)",
		Columns: []string{"k", "easy_us", "hard_us", "ratio", "hard_usable"},
	}
	rng := rand.New(rand.NewSource(2))
	graphN := 12
	for k := 3; k <= 5; k++ {
		ev, eq := workload.EasyUsabilityInstance(k, 12)
		easy := timeIt(func() { core.Usable(ev, eq) })

		var hardTotal time.Duration
		usableCount := 0
		const trials = 2
		for trial := 0; trial < trials; trial++ {
			hv, hq := workload.HardUsabilityInstance(rng, k, graphN, 0.35)
			hardTotal += timeIt(func() {
				if core.Usable(hv, hq) {
					usableCount++
				}
			})
		}
		hard := hardTotal / trials
		ratio := "inf"
		if easy > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(hard)/float64(easy))
		}
		t.Rows = append(t.Rows, []string{itoa(k), us(easy), us(hard), ratio, itoa(usableCount)})
	}
	t.Notes = "times in microseconds. expected: hard/easy ratio grows super-polynomially with k (k-clique embedded in usability)."
	return t
}

// T3Usability measures the per-view usability decision across view-set
// sizes: cost depends on the view, not on how many other views exist.
func T3Usability() Table {
	t := Table{
		ID:      "T3",
		Title:   "Usability decision cost vs view-set size",
		Columns: []string{"views", "usable", "total_us", "per_view_us"},
	}
	rng := rand.New(rand.NewSource(3))
	q := workload.ChainQuery(8, true)
	for _, m := range []int{4, 16, 64, 256} {
		views := workload.ChainViews(rng, 8, true, workload.DefaultViewSpec(m))
		usable := 0
		d := timeIt(func() {
			for _, v := range views {
				if core.Usable(v, q) {
					usable++
				}
			}
		})
		t.Rows = append(t.Rows, []string{
			itoa(m), itoa(usable), us(d), us(d / time.Duration(m)),
		})
	}
	t.Notes = "expected: per-view cost roughly constant as the view set grows."
	return t
}

// T4Containment measures the containment engine across query shapes and
// sizes, comparing the indexed backtracking search against a naive
// enumeration of atom assignments.
func T4Containment() Table {
	t := Table{
		ID:      "T4",
		Title:   "Containment engine: indexed backtracking vs naive enumeration",
		Columns: []string{"family", "size", "contained", "indexed_us", "naive_us", "speedup"},
	}
	rng := rand.New(rand.NewSource(4))
	type pair struct {
		family string
		q1, q2 *cq.Query
	}
	var pairs []pair
	for _, n := range []int{4, 8, 12} {
		// chain in chain: q2 is q1 with one extra random reused atom.
		q1 := workload.ChainQuery(n, false)
		q2 := q1.Clone()
		q2.Body = append(q2.Body, q2.Body[rng.Intn(n)])
		pairs = append(pairs, pair{"chain", q1, q2})
	}
	for _, n := range []int{4, 6, 8} {
		q1 := workload.StarQuery(n, false)
		q2 := q1.Clone()
		q2.Body = append(q2.Body, q2.Body[rng.Intn(n)])
		pairs = append(pairs, pair{"star", q1, q2})
	}
	for i := 0; i < 3; i++ {
		q1 := workload.RandomQuery(rng, 5, 2, 0.6)
		q2 := workload.RandomQuery(rng, 5, 2, 0.6)
		pairs = append(pairs, pair{"random", q1, q2})
	}
	for _, p := range pairs {
		var contained bool
		indexed := timeIt(func() { contained = containment.Contained(p.q2, p.q1) })
		var naiveRes, exhausted bool
		naive := timeIt(func() { naiveRes, exhausted = naiveContained(p.q2, p.q1) })
		if !exhausted && naiveRes != contained {
			t.Notes = "DISAGREEMENT between engines — bug!"
		}
		naiveCell := us(naive)
		if exhausted {
			naiveCell = ">" + naiveCell + " (budget)"
		}
		speedup := "1x"
		if indexed > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(naive)/float64(indexed))
			if exhausted {
				speedup = ">" + speedup
			}
		}
		t.Rows = append(t.Rows, []string{
			p.family, itoa(len(p.q1.Body)), fmt.Sprint(contained), us(indexed), naiveCell, speedup,
		})
	}
	if t.Notes == "" {
		t.Notes = "expected: indexed search at least matches naive enumeration; gap widens with size (budget = 2M assignments)."
	}
	return t
}

// naiveBudget bounds the assignments the naive engine may try before
// giving up; exhausted runs are reported as lower bounds.
const naiveBudget = 2_000_000

// naiveContained is the unoptimised reference containment test: enumerate
// every assignment of q1 atoms to same-predicate q2 atoms without variable
// propagation, validating the substitution at the end. The second result
// reports whether the work budget was exhausted before an answer was found.
func naiveContained(q2, q1 *cq.Query) (found, exhausted bool) {
	if len(q1.Head.Args) != len(q2.Head.Args) {
		return false, false
	}
	choices := make([][]int, len(q1.Body))
	for i, a := range q1.Body {
		for j, b := range q2.Body {
			if a.Pred == b.Pred && len(a.Args) == len(b.Args) {
				choices[i] = append(choices[i], j)
			}
		}
		if len(choices[i]) == 0 {
			return false, false
		}
	}
	assign := make([]int, len(q1.Body))
	budget := naiveBudget
	var rec func(i int) bool
	rec = func(i int) bool {
		if budget <= 0 {
			return false
		}
		if i == len(assign) {
			budget--
			return validAssignment(q1, q2, assign)
		}
		for _, j := range choices[i] {
			assign[i] = j
			if rec(i + 1) {
				return true
			}
			if budget <= 0 {
				return false
			}
		}
		return false
	}
	found = rec(0)
	return found, !found && budget <= 0
}

func validAssignment(q1, q2 *cq.Query, assign []int) bool {
	s := cq.NewSubst()
	for i, ft := range q1.Head.Args {
		tt := q2.Head.Args[i]
		if ft.IsVar() {
			if !s.Bind(ft.Lex, tt) {
				return false
			}
		} else if ft != tt {
			return false
		}
	}
	for i, j := range assign {
		if !s.MatchAtom(q1.Body[i], q2.Body[j]) {
			return false
		}
	}
	return true
}

// T5ComparisonContainment contrasts the sound and complete tests for
// queries with comparisons (paper R5) and demonstrates the sound test's
// incompleteness on the classical witness.
func T5ComparisonContainment() Table {
	t := Table{
		ID:      "T5",
		Title:   "Comparison containment: sound test vs complete (linearisation) test",
		Columns: []string{"terms", "comparisons", "sound_us", "complete_us", "blowup"},
	}
	for _, k := range []int{1, 2, 3, 4} {
		q1, q2 := comparisonPair(k)
		var soundRes bool
		sound := timeIt(func() { soundRes = containment.ContainedSound(q2, q1) })
		complete := timeIt(func() { containment.ContainedComplete(q2, q1) })
		_ = soundRes
		blowup := fmt.Sprintf("%.0fx", float64(complete)/float64(max64(int64(sound), 1)))
		t.Rows = append(t.Rows, []string{
			itoa(len(q2.Vars()) + len(q2.Constants())), itoa(k), us(sound), us(complete), blowup,
		})
	}
	// The incompleteness witness.
	w1 := cq.MustParseQuery("q() :- r(U,V), U <= V")
	w2 := cq.MustParseQuery("q() :- r(X,Y), r(Y,X)")
	soundSays := containment.ContainedSound(w2, w1)
	completeSays := containment.ContainedComplete(w2, w1)
	t.Rows = append(t.Rows, []string{"witness", "1", fmt.Sprintf("sound=%v", soundSays), fmt.Sprintf("complete=%v", completeSays), "-"})
	t.Notes = "expected: complete-test cost grows with the Fubini number of the term count; witness row: sound=false, complete=true."
	return t
}

// comparisonPair builds contained query pairs with k chained comparisons
// over a chain query of growing length, so the linearisation domain (and
// the complete test's Fubini blow-up) grows with k.
func comparisonPair(k int) (q1, q2 *cq.Query) {
	q1 = workload.ChainQuery(k+1, true)
	q2 = q1.Clone()
	for i := 0; i < k; i++ {
		c := cq.NewComparison(cq.Var(fmt.Sprintf("X%d", i)), cq.Le, cq.Var(fmt.Sprintf("X%d", i+1)))
		q2.Comparisons = append(q2.Comparisons, c)
	}
	return q1, q2
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
