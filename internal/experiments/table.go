// Package experiments implements the reproduction experiment suite defined
// in DESIGN.md Section 5. Every experiment returns a Table that cmd/aqvbench
// prints and EXPERIMENTS.md records; the same workloads back the testing.B
// benchmarks in bench_test.go. All randomness is seeded, so tables are
// reproducible run-to-run (timings vary with the machine, shapes do not).
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's result: an id matching DESIGN.md, a set of
// columns and formatted rows, and free-text notes on what the shape shows.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// Render formats the table with aligned columns.
func (t Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		sb.WriteString(t.Notes)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// timeIt runs f and returns its wall-clock duration.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())+float64(d.Nanoseconds()%1000)/1000)
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

// registry maps experiment ids to their (unexecuted) runners, in DESIGN.md
// order.
var registry = []struct {
	id  string
	run func() Table
}{
	{"T1", T1RewritingLengthBound},
	{"T2", T2ExistenceScaling},
	{"T3", T3Usability},
	{"T4", T4Containment},
	{"T5", T5ComparisonContainment},
	{"T6", T6SemiInterval},
	{"F1", F1ChainViews},
	{"F2", F2StarViews},
	{"F3", F3CompleteViews},
	{"F4", F4InverseRulesEval},
	{"F5", F5CertainAnswers},
	{"F6", F6Minimization},
	{"F7", F7EvaluatorAblation},
}

// ByID returns the runner for the experiment with the given id, or
// ok=false. Experiments execute only when the runner is invoked.
func ByID(id string) (func() Table, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.id, id) {
			return e.run, true
		}
	}
	return nil, false
}

// IDs lists the experiment identifiers in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}
