package experiments

import (
	"strings"
	"testing"

	"repro/internal/cq"
)

type queryT = cq.Query

func mustParse(src string) *queryT { return cq.MustParseQuery(src) }

func TestTableRender(t *testing.T) {
	tbl := Table{
		ID:      "X0",
		Title:   "demo",
		Columns: []string{"a", "long_column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "note",
	}
	out := tbl.Render()
	for _, want := range []string{"== X0: demo ==", "long_column", "333", "note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestByIDAndIDs(t *testing.T) {
	if len(IDs()) != 13 {
		t.Fatalf("IDs = %v", IDs())
	}
	for _, id := range IDs() {
		run, ok := ByID(id)
		if !ok || run == nil {
			t.Fatalf("ByID(%s) missing", id)
		}
		if _, ok := ByID(strings.ToLower(id)); !ok {
			t.Fatalf("ByID lowercase %s missing", id)
		}
	}
	if _, ok := ByID("Z9"); ok {
		t.Fatal("unknown id accepted")
	}
}

func TestT1NoViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment; skipped with -short")
	}
	tbl := T1RewritingLengthBound()
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "0" {
			t.Fatalf("length-bound violation: %v", row)
		}
	}
}

func TestT4EnginesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment; skipped with -short")
	}
	tbl := T4Containment()
	if strings.Contains(tbl.Notes, "DISAGREEMENT") {
		t.Fatalf("containment engines disagree:\n%s", tbl.Render())
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestT5WitnessRow(t *testing.T) {
	tbl := T5ComparisonContainment()
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[2] != "sound=false" || last[3] != "complete=true" {
		t.Fatalf("witness row wrong: %v", last)
	}
}

func TestF5InvariantsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment; skipped with -short")
	}
	tbl := F5CertainAnswers()
	if !strings.Contains(tbl.Notes, "all-agree=true") || !strings.Contains(tbl.Notes, "all-sound=true") {
		t.Fatalf("F5 invariants violated:\n%s", tbl.Render())
	}
}

func TestF1RowsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment; skipped with -short")
	}
	tbl := F1ChainViews()
	if len(tbl.Rows) != 5 {
		t.Fatalf("F1 rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("ragged row: %v", row)
		}
	}
}

func TestF4Agreement(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment; skipped with -short")
	}
	tbl := F4InverseRulesEval()
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("F4 methods disagree: %v", row)
		}
	}
}

// TestAblationSuite runs the ablation experiments (T6 semi-interval
// dispatch, F6 minimisation, F7 evaluator optimisations). Like the other
// slow experiment tables it is gated behind -short so the fast suite stays
// fast while full runs keep coverage.
func TestAblationSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full ablation suite; skipped with -short")
	}
	for _, tc := range []struct {
		id  string
		run func() Table
	}{
		{"T6", T6SemiInterval},
		{"F6", F6Minimization},
		{"F7", F7EvaluatorAblation},
	} {
		tbl := tc.run()
		if tbl.ID != tc.id {
			t.Fatalf("%s: table ID = %q", tc.id, tbl.ID)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s: no rows", tc.id)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				t.Fatalf("%s: ragged row %v", tc.id, row)
			}
		}
	}
}

func TestRaceOne(t *testing.T) {
	q := mustParse("q(X,Y) :- r(X,Z), s(Z,Y)")
	vq := []string{"v1(A,B) :- r(A,B)", "v2(A,B) :- s(A,B)"}
	var vs []*queryT
	for _, s := range vq {
		vs = append(vs, mustParse(s))
	}
	for _, algo := range []string{"bucket", "minicon", "equivalent"} {
		if err := RaceOne(q, vs, algo); err != nil {
			t.Fatalf("RaceOne(%s): %v", algo, err)
		}
	}
	if err := RaceOne(q, vs, "nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
