package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/bucket"
	"repro/internal/certain"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/inverserules"
	"repro/internal/minicon"
	"repro/internal/storage"
	"repro/internal/workload"
)

// bucketCap bounds the Bucket cartesian product; runs that hit it are
// marked truncated (">" prefix), mirroring the literature's observation
// that the bucket product becomes infeasible.
const bucketCap = 20000

// algorithmRace runs Bucket and MiniCon on one (query, views) instance.
func algorithmRace(q *cq.Query, views []*cq.Query) (row []string, ok bool) {
	vs, err := core.NewViewSet(views...)
	if err != nil {
		return nil, false
	}
	var bu, mu *cq.Union
	var bst bucket.Stats
	var mst minicon.Stats
	bTime := timeIt(func() {
		bu, bst, err = bucket.Rewrite(q, vs, bucket.Options{MaxCombinations: bucketCap, SkipMinimizeUnion: true})
	})
	if err != nil {
		return nil, false
	}
	mTime := timeIt(func() {
		mu, mst, err = minicon.Rewrite(q, vs, minicon.Options{SkipMinimizeUnion: true, MaxCombinations: 5 * bucketCap})
	})
	if err != nil {
		return nil, false
	}
	bCombos := itoa(bst.Combinations)
	if bst.Combinations > bucketCap {
		bCombos = ">" + itoa(bucketCap)
	}
	speedup := "-"
	if mTime > 0 {
		speedup = fmt.Sprintf("%.1fx", float64(bTime)/float64(mTime))
	}
	return []string{
		itoa(len(views)),
		us(bTime), bCombos, itoa(bu.Len()),
		us(mTime), itoa(mst.MCDs), itoa(mu.Len()),
		speedup,
	}, true
}

var raceColumns = []string{"views", "bucket_us", "bucket_combos", "bucket_ucq", "minicon_us", "mcds", "minicon_ucq", "bucket/minicon"}

// F1ChainViews is the chain-query scaling figure: rewriting time vs number
// of views for Bucket and MiniCon.
func F1ChainViews() Table {
	t := Table{
		ID:      "F1",
		Title:   "Rewriting time vs #views — chain queries (len 8)",
		Columns: raceColumns,
	}
	rng := rand.New(rand.NewSource(11))
	q := workload.ChainQuery(8, true)
	// The literature's "two distinguished variables" configuration:
	// subchain views expose only their endpoints, so a view usage must
	// cover its whole span and rewritings are exact tilings of the chain.
	spec := workload.ViewSpec{MinLen: 2, MaxLen: 4, ExposeEndpoints: true, ExposeProb: 0}
	for _, m := range []int{4, 8, 16, 32, 64} {
		spec.Count = m
		views := workload.ChainViews(rng, 8, true, spec)
		if row, ok := algorithmRace(q, views); ok {
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = "expected: MiniCon at or below Bucket; Bucket's combination count grows as the product of bucket sizes."
	return t
}

// F2StarViews is the star-query scaling figure.
func F2StarViews() Table {
	t := Table{
		ID:      "F2",
		Title:   "Rewriting time vs #views — star queries (6 rays)",
		Columns: raceColumns,
	}
	rng := rand.New(rand.NewSource(12))
	q := workload.StarQuery(6, true)
	// "All distinguished" configuration: every view variable is exposed,
	// so views cover single rays and the rewriting count is the product
	// of per-ray choices — the regime where the bucket product and the
	// MCD combination differ only by the failed-candidate work.
	spec := workload.ViewSpec{MinLen: 1, MaxLen: 2, ExposeEndpoints: true, ExposeProb: 1}
	for _, m := range []int{4, 8, 16, 32} {
		spec.Count = m
		views := workload.StarViews(rng, 6, true, spec)
		if row, ok := algorithmRace(q, views); ok {
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = "expected: same ordering as F1; star queries keep buckets small so the gap narrows."
	return t
}

// F3CompleteViews is the complete-query scaling figure — the hardest family.
func F3CompleteViews() Table {
	t := Table{
		ID:      "F3",
		Title:   "Rewriting time vs #views — complete queries (4 vertices)",
		Columns: raceColumns,
	}
	rng := rand.New(rand.NewSource(13))
	q := workload.CompleteQuery(4)
	for _, m := range []int{4, 8, 16} {
		views := workload.CompleteViews(rng, 4, workload.ViewSpec{
			Count: m, MinLen: 2, MaxLen: 3, ExposeProb: 1,
		})
		if row, ok := algorithmRace(q, views); ok {
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = "expected: hardest family; many subgoals per query make bucket products explode fastest."
	return t
}

// F4InverseRulesEval compares answering strategies end-to-end over growing
// databases: inverse rules (no rewriting search, Skolem joins at eval time)
// versus evaluating the MiniCon rewriting, with direct evaluation over the
// base data as the reference.
func F4InverseRulesEval() Table {
	t := Table{
		ID:      "F4",
		Title:   "Answering via inverse rules vs MiniCon MCR evaluation",
		Columns: []string{"tuples/pred", "direct_us", "minicon_rw_us", "minicon_eval_us", "invrules_us", "answers", "agree"},
	}
	const n = 5
	q := workload.ChainQuery(n, true)
	views := []*cq.Query{
		cq.MustParseQuery("v0(Y0,Y2) :- p1(Y0,Y1), p2(Y1,Y2)"),
		cq.MustParseQuery("v1(Y2,Y4) :- p3(Y2,Y3), p4(Y3,Y4)"),
		cq.MustParseQuery("v2(Y4,Y5) :- p5(Y4,Y5)"),
		cq.MustParseQuery("v3(Y0,Y3) :- p1(Y0,Y1), p2(Y1,Y2), p3(Y2,Y3)"),
	}
	vs := core.MustNewViewSet(views...)
	for _, size := range []int{100, 400, 1600} {
		rng := rand.New(rand.NewSource(int64(14 + size)))
		base := workload.ChainDatabase(rng, n, true, size, size/4+2)
		viewDB, err := datalog.MaterializeViews(base, views)
		if err != nil {
			continue
		}
		var direct, mcAnswers, irAnswers []storage.Tuple
		dTime := timeIt(func() { direct = datalog.EvalQuery(base, q) })
		var u *cq.Union
		rwTime := timeIt(func() {
			u, _, _ = minicon.Rewrite(q, vs, minicon.Options{VerifyCandidates: true})
		})
		evTime := timeIt(func() { mcAnswers = datalog.EvalUnion(viewDB, u) })
		irTime := timeIt(func() { irAnswers, _ = inverserules.Answer(q, views, viewDB) })
		agree := fmt.Sprint(storage.TuplesEqual(mcAnswers, irAnswers))
		t.Rows = append(t.Rows, []string{
			itoa(size), us(dTime), us(rwTime), us(evTime), us(irTime), itoa(len(mcAnswers)), agree,
		})
		_ = direct
	}
	t.Notes = "expected: inverse rules pay Skolem-join cost at evaluation; MCR evaluation scales better at larger databases; answers agree."
	return t
}

// F5CertainAnswers checks the semantic invariants of maximally-contained
// rewritings on random workloads: the MiniCon and inverse-rules routes
// agree, both are sound, and they recover the direct answers exactly when
// the views preserve the needed information.
func F5CertainAnswers() Table {
	t := Table{
		ID:      "F5",
		Title:   "Certain answers: MCR evaluation vs ground truth",
		Columns: []string{"seed", "family", "direct", "certain", "agree", "sound", "exact"},
	}
	agreeAll, soundAll := true, true
	exactCount := 0
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(20 + seed))
		n := 2 + int(seed%3)
		q := workload.ChainQuery(n, true)
		views := workload.ChainViews(rng, n, true, workload.DefaultViewSpec(6))
		base := workload.ChainDatabase(rng, n, true, 50, 8)
		rep, err := certain.Compare(q, views, base)
		if err != nil {
			continue
		}
		agreeAll = agreeAll && rep.MethodsAgree
		soundAll = soundAll && rep.SoundMC && rep.SoundIR
		if rep.ExactRecovery {
			exactCount++
		}
		t.Rows = append(t.Rows, []string{
			itoa(int(seed)), "chain", itoa(rep.Direct), itoa(rep.CertainMC),
			fmt.Sprint(rep.MethodsAgree), fmt.Sprint(rep.SoundMC && rep.SoundIR), fmt.Sprint(rep.ExactRecovery),
		})
	}
	t.Notes = fmt.Sprintf("expected: agree and sound everywhere. all-agree=%v all-sound=%v exact-recoveries=%d", agreeAll, soundAll, exactCount)
	return t
}

// F6Minimization is the ablation for query minimisation in the equivalent-
// rewriting search: redundant subgoals inflate the cover space unless the
// query is minimised first.
func F6Minimization() Table {
	t := Table{
		ID:      "F6",
		Title:   "Ablation: query minimisation before rewriting search",
		Columns: []string{"n", "redundant", "min_us", "min_cands", "nomin_us", "nomin_cands", "found_both"},
	}
	rng := rand.New(rand.NewSource(30))
	for _, n := range []int{3, 4, 5, 6} {
		q := workload.ChainQuery(n, true)
		// Inject redundant copies of random subgoals with renamed tails.
		red := q.Clone()
		for i := 0; i < n; i++ {
			a := q.Body[rng.Intn(n)].Clone()
			a.Args[1] = cq.Var(fmt.Sprintf("R%d", i))
			red.Body = append(red.Body, a)
		}
		views := workload.ChainViews(rng, n, true, workload.DefaultViewSpec(2*n))
		vs, err := core.NewViewSet(views...)
		if err != nil {
			continue
		}
		withMin := core.NewRewriter(vs)
		var res1 []*core.Rewriting
		var st1 core.Stats
		d1 := timeIt(func() { res1, st1 = withMin.Rewrite(red) })

		noMin := core.NewRewriter(vs)
		noMin.Opt.SkipMinimize = true
		var res2 []*core.Rewriting
		var st2 core.Stats
		d2 := timeIt(func() { res2, st2 = noMin.Rewrite(red) })

		foundBoth := fmt.Sprint((len(res1) > 0) == (len(res2) > 0))
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(len(red.Body) - n), us(d1), itoa(st1.CandidatesTried),
			us(d2), itoa(st2.CandidatesTried), foundBoth,
		})
		_ = st2
		_ = d2
	}
	t.Notes = "expected: minimisation reduces candidates; without it the search may also miss rewritings (completeness needs a core query)."
	return t
}

// RaceOne runs a single algorithm once; bench_test.go uses it to time the
// per-figure workloads under testing.B.
func RaceOne(q *cq.Query, views []*cq.Query, algo string) error {
	vs, err := core.NewViewSet(views...)
	if err != nil {
		return err
	}
	switch algo {
	case "bucket":
		_, _, err = bucket.Rewrite(q, vs, bucket.Options{MaxCombinations: bucketCap, SkipMinimizeUnion: true})
	case "minicon":
		_, _, err = minicon.Rewrite(q, vs, minicon.Options{SkipMinimizeUnion: true})
	case "equivalent":
		r := core.NewRewriter(vs)
		r.RewriteOne(q)
	default:
		return fmt.Errorf("experiments: unknown algorithm %q", algo)
	}
	return err
}
