package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/containment"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/storage"
	"repro/internal/workload"
)

// T6SemiInterval measures the tractable comparison fragment the paper
// identifies: when the containing query's comparisons are variable-vs-
// constant (semi-interval), the polynomial single-mapping test is complete
// and the dispatcher uses it instead of the exponential linearisation
// enumeration.
func T6SemiInterval() Table {
	t := Table{
		ID:      "T6",
		Title:   "Semi-interval dispatch: polynomial complete test for var-vs-const comparisons",
		Columns: []string{"chain", "comparisons", "dispatch_us", "linearise_us", "saving", "agree"},
	}
	for _, k := range []int{1, 2, 3, 4} {
		q1 := workload.ChainQuery(k+1, true)
		for i := 0; i <= k; i++ {
			q1.Comparisons = append(q1.Comparisons, cq.NewComparison(
				cq.Var(fmt.Sprintf("X%d", i)), cq.Ge, cq.IntConst(0)))
		}
		q2 := q1.Clone()
		q2.Comparisons = append(q2.Comparisons, cq.NewComparison(
			cq.Var("X0"), cq.Gt, cq.IntConst(1)))

		var viaDispatch, viaComplete bool
		fast := timeIt(func() { viaDispatch = containment.Contained(q2, q1) })
		slow := timeIt(func() { viaComplete = containment.ContainedComplete(q2, q1) })
		saving := "-"
		if fast > 0 {
			saving = fmt.Sprintf("%.0fx", float64(slow)/float64(fast))
		}
		t.Rows = append(t.Rows, []string{
			itoa(k + 1), itoa(len(q1.Comparisons)), us(fast), us(slow), saving,
			fmt.Sprint(viaDispatch == viaComplete),
		})
	}
	t.Notes = "expected: dispatch cost stays flat while the linearisation test grows with the Fubini number; verdicts agree."
	return t
}

// F7EvaluatorAblation measures the evaluator's two structural
// optimisations — connected-component decomposition and projection
// pushdown — against the naive backtracking join, on the disconnected and
// don't-care-heavy member shapes that view rewritings produce.
func F7EvaluatorAblation() Table {
	t := Table{
		ID:      "F7",
		Title:   "Ablation: evaluator decomposition + projection vs naive join",
		Columns: []string{"shape", "rows", "optimised_us", "naive_us", "speedup", "answers_equal"},
	}
	rng := rand.New(rand.NewSource(40))

	type instance struct {
		shape string
		db    *storage.Database
		q     *cq.Query
	}
	var instances []instance

	// Shape 1: disconnected member (cross product without decomposition).
	for _, rows := range []int{200, 800} {
		db := storage.NewDatabase()
		for i := 0; i < rows; i++ {
			db.Insert("v1", storage.Tuple{fmt.Sprint(rng.Intn(rows))})
			db.Insert("v2", storage.Tuple{fmt.Sprint(rng.Intn(rows))})
			db.Insert("v3", storage.Tuple{fmt.Sprint(rng.Intn(rows))})
		}
		instances = append(instances, instance{
			shape: "disconnected",
			db:    db,
			q:     cq.MustParseQuery("q(X) :- v1(X), v2(A), v3(B)"),
		})
	}
	// Shape 2: connected chain with don't-care columns (projection).
	for _, rows := range []int{200, 800} {
		db := storage.NewDatabase()
		for i := 0; i < rows; i++ {
			db.Insert("v", storage.Tuple{
				fmt.Sprint(rng.Intn(6)), fmt.Sprint(rng.Intn(7)),
				fmt.Sprint(rng.Intn(5)), fmt.Sprint(i),
			})
		}
		instances = append(instances, instance{
			shape: "dont-care chain",
			db:    db,
			q:     cq.MustParseQuery("q(X0,X3) :- v(X0,X1,F0,F1), v(F2,X1,X2,F3), v(F4,F5,X2,X3)"),
		})
	}

	for _, in := range instances {
		var opt, naive []storage.Tuple
		optTime := timeIt(func() { opt = datalog.EvalQuery(in.db, in.q) })
		naiveTime := timeIt(func() { naive = datalog.EvalQueryNaive(in.db, in.q) })
		speedup := "-"
		if optTime > 0 {
			speedup = fmt.Sprintf("%.0fx", float64(naiveTime)/float64(optTime))
		}
		t.Rows = append(t.Rows, []string{
			in.shape, itoa(in.db.TotalTuples()), us(optTime), us(naiveTime), speedup,
			fmt.Sprint(storage.TuplesEqual(opt, naive)),
		})
	}
	t.Notes = "expected: orders-of-magnitude speedups on both shapes with identical answers; these member shapes dominate MCR evaluation (F4/F5)."
	return t
}
