package workload

import (
	"testing"

	"repro/internal/core"
)

// 3-colourability via usability: the paper's NP-hardness reduction shape.
func TestColoringUsability(t *testing.T) {
	cases := []struct {
		name      string
		edges     [][2]int
		colorable bool
	}{
		{"single edge", [][2]int{{0, 1}}, true},
		{"triangle", [][2]int{{0, 1}, {1, 2}, {0, 2}}, true},
		{"C5 (odd cycle)", [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, true},
		{"K4", [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, false},
		{"K4 plus pendant", [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}}, false},
		{"petersen-ish wheel W5", [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {5, 0}, {5, 1}, {5, 2}, {5, 3}, {5, 4}}, false},
		{"bipartite K23", [][2]int{{0, 3}, {0, 4}, {1, 3}, {1, 4}, {2, 3}, {2, 4}}, true},
	}
	for _, c := range cases {
		view, query := ColoringUsabilityInstance(c.edges)
		if err := view.Validate(); err != nil {
			t.Fatalf("%s: invalid view: %v", c.name, err)
		}
		if got := core.Usable(view, query); got != c.colorable {
			t.Errorf("%s: usable=%v want 3-colorable=%v", c.name, got, c.colorable)
		}
	}
}

func TestColoringInstancePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ColoringUsabilityInstance(nil)
}
