package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/cq"
)

// The T2/T3 hard family. The paper's NP-completeness results (R3) locate
// the hardness of rewriting-existence and view-usability in deciding
// whether a view body maps homomorphically into the query body. Graph
// homomorphism instances make this concrete: the view body is a k-clique
// pattern over the edge predicate, the query body is a graph; a valid
// application of the view exists iff the query graph contains a k-clique.

// CliqueView builds the view whose body is the complete pattern on k
// variables, all distinguished:
//
//	v(Y0..Yk-1) :- e(Yi,Yj) for all i<j   (both orientations)
//
// Both edge orientations are included so the target graph can be stored
// undirected as symmetric pairs.
func CliqueView(k int) *cq.Query {
	if k < 2 {
		panic("workload: clique view needs k >= 2")
	}
	var body []cq.Atom
	args := make([]cq.Term, k)
	for i := 0; i < k; i++ {
		args[i] = viewVar(i)
		for j := i + 1; j < k; j++ {
			body = append(body, cq.NewAtom("e", viewVar(i), viewVar(j)))
			body = append(body, cq.NewAtom("e", viewVar(j), viewVar(i)))
		}
	}
	return &cq.Query{Head: cq.NewAtom("v", args...), Body: body}
}

// GraphQuery builds a boolean-ish query whose body is the given undirected
// graph over n vertices (edges stored in both orientations), exposing the
// first vertex.
func GraphQuery(n int, edges [][2]int) *cq.Query {
	var body []cq.Atom
	for _, e := range edges {
		body = append(body, cq.NewAtom("e", chainVar(e[0]), chainVar(e[1])))
		body = append(body, cq.NewAtom("e", chainVar(e[1]), chainVar(e[0])))
	}
	if len(body) == 0 {
		panic("workload: graph query needs at least one edge")
	}
	return &cq.Query{Head: cq.NewAtom("q", body[0].Args[0]), Body: body}
}

// HardUsabilityInstance builds a (view, query) pair for which the usability
// test must solve k-clique on a random graph with the given edge
// probability. With edgeProb below the clique threshold the instance is
// usually negative, which forces the homomorphism search to exhaust its
// space — the T2/T3 hard case.
func HardUsabilityInstance(rng *rand.Rand, k, n int, edgeProb float64) (view, query *cq.Query) {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < edgeProb {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	if len(edges) == 0 {
		edges = append(edges, [2]int{0, 1})
	}
	return CliqueView(k), GraphQuery(n, edges)
}

// EasyUsabilityInstance builds a (view, query) pair of the same sizes for
// which usability is decidable greedily: the view is a subchain of a chain
// query, so the homomorphism search never backtracks.
func EasyUsabilityInstance(k, n int) (view, query *cq.Query) {
	body := make([]cq.Atom, k)
	args := []cq.Term{viewVar(0), viewVar(k)}
	for i := 0; i < k; i++ {
		body[i] = cq.NewAtom(fmt.Sprintf("p%d", i+1), viewVar(i), viewVar(i+1))
	}
	view = &cq.Query{Head: cq.NewAtom("v", args...), Body: body}
	return view, ChainQuery(n, true)
}

// ColoringUsabilityInstance encodes the paper's NP-hardness reduction
// shape directly: the view's body is the (symmetrised) input graph and the
// query's body is the triangle K3, so the view is usable for the query iff
// the graph is 3-colourable (a homomorphism G → K3 is exactly a proper
// 3-colouring). All view variables are distinguished so the application
// validity conditions never reject a homomorphism.
func ColoringUsabilityInstance(edges [][2]int) (view, query *cq.Query) {
	if len(edges) == 0 {
		panic("workload: coloring instance needs at least one edge")
	}
	var body []cq.Atom
	seen := make(map[string]bool)
	var args []cq.Term
	addVar := func(i int) cq.Term {
		t := viewVar(i)
		if !seen[t.Lex] {
			seen[t.Lex] = true
			args = append(args, t)
		}
		return t
	}
	for _, e := range edges {
		a, b := addVar(e[0]), addVar(e[1])
		body = append(body, cq.NewAtom("e", a, b))
		body = append(body, cq.NewAtom("e", b, a))
	}
	view = &cq.Query{Head: cq.NewAtom("v", args...), Body: body}
	// K3 with both orientations; expose one vertex so the query is a
	// well-formed unary pattern.
	query = GraphQuery(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	return view, query
}
