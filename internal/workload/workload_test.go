package workload

import (
	"math/rand"
	"testing"

	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/datalog"
)

func TestChainQueryShape(t *testing.T) {
	q := ChainQuery(3, true)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.String() != "q(X0,X3) :- p1(X0,X1), p2(X1,X2), p3(X2,X3)." {
		t.Fatalf("chain = %v", q)
	}
	single := ChainQuery(2, false)
	if single.Body[0].Pred != "e" || single.Body[1].Pred != "e" {
		t.Fatalf("single-pred chain = %v", single)
	}
}

func TestStarQueryShape(t *testing.T) {
	q := StarQuery(3, true)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.Arity() != 4 || len(q.Body) != 3 {
		t.Fatalf("star = %v", q)
	}
	for _, a := range q.Body {
		if a.Args[0] != cq.Var("X0") {
			t.Fatalf("ray does not start at centre: %v", a)
		}
	}
}

func TestCompleteQueryShape(t *testing.T) {
	q := CompleteQuery(4)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.Body) != 6 { // C(4,2)
		t.Fatalf("complete body = %v", q.Body)
	}
}

func TestGeneratorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { ChainQuery(0, true) },
		func() { StarQuery(0, true) },
		func() { CompleteQuery(1) },
		func() { RandomQuery(rand.New(rand.NewSource(1)), 0, 1, 0) },
		func() { CliqueView(1) },
		func() { GraphQuery(3, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestChainViewsValidAndUsable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	q := ChainQuery(6, true)
	views := ChainViews(rng, 6, true, DefaultViewSpec(20))
	if len(views) != 20 {
		t.Fatalf("views = %d", len(views))
	}
	usable := 0
	for _, v := range views {
		if err := v.Validate(); err != nil {
			t.Fatalf("invalid view %v: %v", v, err)
		}
		if core.Usable(v, q) {
			usable++
		}
	}
	if usable == 0 {
		t.Fatal("no usable view in 20 draws with endpoint exposure")
	}
}

func TestStarAndCompleteViewsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, v := range StarViews(rng, 5, true, DefaultViewSpec(15)) {
		if err := v.Validate(); err != nil {
			t.Fatalf("invalid star view %v: %v", v, err)
		}
	}
	for _, v := range CompleteViews(rng, 5, DefaultViewSpec(15)) {
		if err := v.Validate(); err != nil {
			t.Fatalf("invalid complete view %v: %v", v, err)
		}
	}
}

func TestViewNamesDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	views := ChainViews(rng, 5, true, DefaultViewSpec(10))
	if _, err := core.NewViewSet(views...); err != nil {
		t.Fatalf("generated views rejected: %v", err)
	}
}

func TestRandomQueryValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		q := RandomQuery(rng, 1+i%5, 3, 0.5)
		if err := q.Validate(); err != nil {
			t.Fatalf("invalid random query %v: %v", q, err)
		}
	}
}

func TestRandomViewsForQueryValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := RandomQuery(rng, 4, 3, 0.5)
	for _, v := range RandomViewsForQuery(rng, q, DefaultViewSpec(12)) {
		if err := v.Validate(); err != nil {
			t.Fatalf("invalid derived view %v: %v", v, err)
		}
	}
}

func TestRandomDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := RandomDatabase(rng, []string{"p1", "p2"}, 2, 100, 10)
	if db.Relation("p1") == nil || db.Relation("p2") == nil {
		t.Fatal("relations missing")
	}
	if db.Relation("p1").Len() == 0 || db.Relation("p1").Len() > 100 {
		t.Fatalf("p1 size = %d", db.Relation("p1").Len())
	}
}

func TestChainDatabaseHasWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 4
	db := ChainDatabase(rng, n, true, 30, 8)
	q := ChainQuery(n, true)
	if len(datalog.EvalQuery(db, q)) == 0 {
		t.Fatal("planted witness chain missing")
	}
}

func TestCliqueViewAndGraphQuery(t *testing.T) {
	v := CliqueView(3)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(v.Body) != 6 { // 3 pairs x 2 orientations
		t.Fatalf("clique body = %v", v.Body)
	}
	// Triangle graph: the clique view must be usable.
	q := GraphQuery(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if !core.Usable(v, q) {
		t.Fatal("triangle not found in triangle graph")
	}
	// Path graph: no triangle.
	path := GraphQuery(3, [][2]int{{0, 1}, {1, 2}})
	if core.Usable(v, path) {
		t.Fatal("triangle found in path graph")
	}
}

func TestHardUsabilityInstanceDeterministic(t *testing.T) {
	v1, q1 := HardUsabilityInstance(rand.New(rand.NewSource(13)), 3, 8, 0.3)
	v2, q2 := HardUsabilityInstance(rand.New(rand.NewSource(13)), 3, 8, 0.3)
	if v1.String() != v2.String() || q1.String() != q2.String() {
		t.Fatal("same seed gave different instances")
	}
	if err := q1.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEasyUsabilityInstance(t *testing.T) {
	v, q := EasyUsabilityInstance(3, 6)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if !core.Usable(v, q) {
		t.Fatal("subchain view should be usable in longer chain")
	}
}

// The generated chain views must actually enable rewritings: with full
// coverage views, the rewriter should find an equivalent rewriting.
func TestChainViewsEnableRewriting(t *testing.T) {
	q := ChainQuery(4, true)
	// Deterministic full-cover views: p1p2 and p3p4, all endpoints shown.
	views := []*cq.Query{
		cq.MustParseQuery("v0(Y0,Y2) :- p1(Y0,Y1), p2(Y1,Y2)"),
		cq.MustParseQuery("v1(Y2,Y4) :- p3(Y2,Y3), p4(Y3,Y4)"),
	}
	vs := core.MustNewViewSet(views...)
	r := core.NewRewriter(vs)
	rw := r.RewriteOne(q)
	if rw == nil {
		t.Fatal("no rewriting for full-cover chain views")
	}
	if !containment.Equivalent(rw.Expansion, q) {
		t.Fatal("rewriting not equivalent")
	}
}
