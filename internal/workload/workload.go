// Package workload generates the synthetic queries, views and databases
// used by the experiment suite (DESIGN.md Section 5). The query families —
// chain, star and complete — are the canonical benchmark shapes of the
// answering-queries-using-views literature; every generator is driven by an
// explicit *rand.Rand so all tables and figures are reproducible from a
// seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/cq"
	"repro/internal/storage"
)

// ChainQuery builds the chain query of length n:
//
//	q(X0,Xn) :- p1(X0,X1), p2(X1,X2), ..., pn(Xn-1,Xn).
//
// With distinctPreds=false every subgoal uses the single predicate "e".
func ChainQuery(n int, distinctPreds bool) *cq.Query {
	if n < 1 {
		panic("workload: chain length must be >= 1")
	}
	body := make([]cq.Atom, n)
	for i := 0; i < n; i++ {
		pred := "e"
		if distinctPreds {
			pred = fmt.Sprintf("p%d", i+1)
		}
		body[i] = cq.NewAtom(pred, chainVar(i), chainVar(i+1))
	}
	return &cq.Query{
		Head: cq.NewAtom("q", chainVar(0), chainVar(n)),
		Body: body,
	}
}

func chainVar(i int) cq.Term { return cq.Var(fmt.Sprintf("X%d", i)) }

// StarQuery builds the star query with n rays:
//
//	q(X0,X1,...,Xn) :- p1(X0,X1), p2(X0,X2), ..., pn(X0,Xn).
//
// All variables are distinguished (the standard "distinguished star").
func StarQuery(n int, distinctPreds bool) *cq.Query {
	if n < 1 {
		panic("workload: star must have >= 1 ray")
	}
	body := make([]cq.Atom, n)
	args := make([]cq.Term, n+1)
	args[0] = chainVar(0)
	for i := 1; i <= n; i++ {
		pred := "e"
		if distinctPreds {
			pred = fmt.Sprintf("p%d", i)
		}
		body[i-1] = cq.NewAtom(pred, chainVar(0), chainVar(i))
		args[i] = chainVar(i)
	}
	return &cq.Query{Head: cq.NewAtom("q", args...), Body: body}
}

// CompleteQuery builds the complete ("clique") query on n variables: one
// subgoal e(Xi,Xj) for every ordered pair i<j, all variables distinguished.
// These are the hardest instances of the F3 experiment.
func CompleteQuery(n int) *cq.Query {
	if n < 2 {
		panic("workload: complete query needs >= 2 variables")
	}
	var body []cq.Atom
	args := make([]cq.Term, n)
	for i := 0; i < n; i++ {
		args[i] = chainVar(i)
		for j := i + 1; j < n; j++ {
			body = append(body, cq.NewAtom("e", chainVar(i), chainVar(j)))
		}
	}
	return &cq.Query{Head: cq.NewAtom("q", args...), Body: body}
}

// ViewSpec controls random view derivation.
type ViewSpec struct {
	// Count is the number of views to generate.
	Count int
	// MinLen/MaxLen bound each view's subgoal count.
	MinLen, MaxLen int
	// ExposeEndpoints forces the first and last variable of a chain view
	// to be distinguished (star/complete views always expose the centre /
	// clique variables they touch with probability ExposeProb).
	ExposeEndpoints bool
	// ExposeProb is the probability that a non-forced variable is
	// distinguished.
	ExposeProb float64
}

// DefaultViewSpec matches the MiniCon-experiment defaults.
func DefaultViewSpec(count int) ViewSpec {
	return ViewSpec{Count: count, MinLen: 1, MaxLen: 3, ExposeEndpoints: true, ExposeProb: 0.5}
}

// ChainViews derives views over the chain query's predicates: each view is
// a random subchain pi..pj with endpoint variables distinguished and
// interior variables distinguished with probability ExposeProb.
func ChainViews(rng *rand.Rand, chainLen int, distinctPreds bool, spec ViewSpec) []*cq.Query {
	views := make([]*cq.Query, 0, spec.Count)
	for k := 0; k < spec.Count; k++ {
		length := spec.MinLen
		if spec.MaxLen > spec.MinLen {
			length += rng.Intn(spec.MaxLen - spec.MinLen + 1)
		}
		if length > chainLen {
			length = chainLen
		}
		start := rng.Intn(chainLen - length + 1)
		body := make([]cq.Atom, length)
		for i := 0; i < length; i++ {
			pred := "e"
			if distinctPreds {
				pred = fmt.Sprintf("p%d", start+i+1)
			}
			body[i] = cq.NewAtom(pred, viewVar(start+i), viewVar(start+i+1))
		}
		var head []cq.Term
		for i := start; i <= start+length; i++ {
			forced := spec.ExposeEndpoints && (i == start || i == start+length)
			if forced || rng.Float64() < spec.ExposeProb {
				head = append(head, viewVar(i))
			}
		}
		if len(head) == 0 {
			head = []cq.Term{viewVar(start)} // keep the view safe and useful
		}
		views = append(views, &cq.Query{
			Head: cq.NewAtom(fmt.Sprintf("v%d", k), head...),
			Body: body,
		})
	}
	return views
}

func viewVar(i int) cq.Term { return cq.Var(fmt.Sprintf("Y%d", i)) }

// StarViews derives views over the star query's predicates: each view takes
// a random subset of rays, always exposing the centre.
func StarViews(rng *rand.Rand, rays int, distinctPreds bool, spec ViewSpec) []*cq.Query {
	views := make([]*cq.Query, 0, spec.Count)
	for k := 0; k < spec.Count; k++ {
		nrays := spec.MinLen
		if spec.MaxLen > spec.MinLen {
			nrays += rng.Intn(spec.MaxLen - spec.MinLen + 1)
		}
		if nrays > rays {
			nrays = rays
		}
		chosen := rng.Perm(rays)[:nrays]
		body := make([]cq.Atom, nrays)
		head := []cq.Term{viewVar(0)}
		for i, ray := range chosen {
			pred := "e"
			if distinctPreds {
				pred = fmt.Sprintf("p%d", ray+1)
			}
			body[i] = cq.NewAtom(pred, viewVar(0), viewVar(ray+1))
			if rng.Float64() < spec.ExposeProb {
				head = append(head, viewVar(ray+1))
			}
		}
		views = append(views, &cq.Query{
			Head: cq.NewAtom(fmt.Sprintf("v%d", k), head...),
			Body: body,
		})
	}
	return views
}

// CompleteViews derives views over the complete query: each view is the
// clique pattern on a random subset of vertices, exposing each touched
// vertex with probability ExposeProb (at least one exposed).
func CompleteViews(rng *rand.Rand, n int, spec ViewSpec) []*cq.Query {
	views := make([]*cq.Query, 0, spec.Count)
	for k := 0; k < spec.Count; k++ {
		size := 2
		if spec.MaxLen > 2 {
			size += rng.Intn(spec.MaxLen - 1)
		}
		if size > n {
			size = n
		}
		verts := rng.Perm(n)[:size]
		var body []cq.Atom
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				a, b := verts[i], verts[j]
				if a > b {
					a, b = b, a
				}
				body = append(body, cq.NewAtom("e", viewVar(a), viewVar(b)))
			}
		}
		var head []cq.Term
		for _, v := range verts {
			if rng.Float64() < spec.ExposeProb {
				head = append(head, viewVar(v))
			}
		}
		if len(head) == 0 {
			head = []cq.Term{viewVar(verts[0])}
		}
		views = append(views, &cq.Query{
			Head: cq.NewAtom(fmt.Sprintf("v%d", k), head...),
			Body: body,
		})
	}
	return views
}

// RandomQuery generates a random conjunctive query with the given number of
// subgoals over binary predicates p1..pPreds, reusing variables with the
// given probability. At least one variable is distinguished.
func RandomQuery(rng *rand.Rand, atoms, preds int, reuseProb float64) *cq.Query {
	if atoms < 1 || preds < 1 {
		panic("workload: RandomQuery needs atoms >= 1 and preds >= 1")
	}
	var vars []cq.Term
	nextVar := func() cq.Term {
		if len(vars) > 0 && rng.Float64() < reuseProb {
			return vars[rng.Intn(len(vars))]
		}
		v := cq.Var(fmt.Sprintf("X%d", len(vars)))
		vars = append(vars, v)
		return v
	}
	body := make([]cq.Atom, atoms)
	for i := range body {
		pred := fmt.Sprintf("p%d", rng.Intn(preds)+1)
		body[i] = cq.NewAtom(pred, nextVar(), nextVar())
	}
	// Distinguish a random non-empty subset of variables.
	var head []cq.Term
	for _, v := range vars {
		if rng.Float64() < 0.5 {
			head = append(head, v)
		}
	}
	if len(head) == 0 {
		head = []cq.Term{vars[rng.Intn(len(vars))]}
	}
	return &cq.Query{Head: cq.NewAtom("q", head...), Body: body}
}

// RandomViewsForQuery derives random views from a query: each view takes a
// random subset of the query's subgoals (renamed apart) and exposes each
// variable with probability ExposeProb.
func RandomViewsForQuery(rng *rand.Rand, q *cq.Query, spec ViewSpec) []*cq.Query {
	views := make([]*cq.Query, 0, spec.Count)
	for k := 0; k < spec.Count; k++ {
		nAtoms := spec.MinLen
		if spec.MaxLen > spec.MinLen {
			nAtoms += rng.Intn(spec.MaxLen - spec.MinLen + 1)
		}
		if nAtoms > len(q.Body) {
			nAtoms = len(q.Body)
		}
		idxs := rng.Perm(len(q.Body))[:nAtoms]
		body := make([]cq.Atom, nAtoms)
		varSet := make(map[string]bool)
		var varOrder []string
		for i, idx := range idxs {
			a := q.Body[idx].Clone()
			for j, t := range a.Args {
				if t.IsVar() {
					name := "Y_" + t.Lex
					a.Args[j] = cq.Var(name)
					if !varSet[name] {
						varSet[name] = true
						varOrder = append(varOrder, name)
					}
				}
			}
			body[i] = a
		}
		var head []cq.Term
		for _, name := range varOrder {
			if rng.Float64() < spec.ExposeProb {
				head = append(head, cq.Var(name))
			}
		}
		if len(head) == 0 {
			head = []cq.Term{cq.Var(varOrder[0])}
		}
		views = append(views, &cq.Query{
			Head: cq.NewAtom(fmt.Sprintf("v%d", k), head...),
			Body: body,
		})
	}
	return views
}

// RandomDatabase populates relations for the given predicates (all binary
// unless arity overridden) with tuples drawn uniformly from a domain of the
// given size.
func RandomDatabase(rng *rand.Rand, preds []string, arity, tuplesPerPred, domain int) *storage.Database {
	db := storage.NewDatabase()
	for _, p := range preds {
		for i := 0; i < tuplesPerPred; i++ {
			t := make(storage.Tuple, arity)
			for j := range t {
				t[j] = fmt.Sprintf("c%d", rng.Intn(domain))
			}
			// Ignore the error: arities are consistent by construction.
			_ = db.Insert(p, t)
		}
	}
	return db
}

// ChainDatabase builds a database for chain queries: tuples over predicates
// p1..pn (or "e") forming random edges plus a guaranteed full chain so the
// query has at least one answer.
func ChainDatabase(rng *rand.Rand, chainLen int, distinctPreds bool, tuplesPerPred, domain int) *storage.Database {
	var preds []string
	if distinctPreds {
		for i := 1; i <= chainLen; i++ {
			preds = append(preds, fmt.Sprintf("p%d", i))
		}
	} else {
		preds = []string{"e"}
	}
	db := RandomDatabase(rng, preds, 2, tuplesPerPred, domain)
	// Plant one witness chain c0 -> c1 -> ... -> cn.
	for i := 0; i < chainLen; i++ {
		p := "e"
		if distinctPreds {
			p = fmt.Sprintf("p%d", i+1)
		}
		_ = db.Insert(p, storage.Tuple{fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", i+1)})
	}
	return db
}
