package containment

import (
	"sync"

	"repro/internal/cq"
)

// Memo caches containment decisions keyed by the canonical fingerprints of
// the two queries (cq.Fingerprint), so that repeated checks over
// α-equivalent query pairs are answered without re-running the exponential
// homomorphism search. Containment is invariant under variable renaming and
// subgoal reordering, which is exactly the equivalence the fingerprint
// quotients by, so a hit is always sound.
//
// A Memo is safe for concurrent use. A nil *Memo is valid and simply
// delegates to the unmemoised functions.
type Memo struct {
	mu        sync.Mutex
	contained map[memoKey]bool
	hits      uint64
	misses    uint64
}

type memoKey struct {
	sub, sup string
}

// NewMemo returns an empty containment memo.
func NewMemo() *Memo {
	return &Memo{contained: make(map[memoKey]bool)}
}

// Contained reports q2 ⊑ q1, consulting and populating the memo.
func (m *Memo) Contained(q2, q1 *cq.Query) bool {
	if m == nil {
		return Contained(q2, q1)
	}
	key := memoKey{sub: cq.Fingerprint(q2), sup: cq.Fingerprint(q1)}
	m.mu.Lock()
	if v, ok := m.contained[key]; ok {
		m.hits++
		m.mu.Unlock()
		return v
	}
	m.mu.Unlock()
	v := Contained(q2, q1)
	m.mu.Lock()
	m.contained[key] = v
	m.misses++
	m.mu.Unlock()
	return v
}

// Equivalent reports q1 ≡ q2 via two memoised containment checks.
func (m *Memo) Equivalent(q1, q2 *cq.Query) bool {
	return m.Contained(q1, q2) && m.Contained(q2, q1)
}

// Stats returns the hit and miss counts accumulated so far.
func (m *Memo) Stats() (hits, misses uint64) {
	if m == nil {
		return 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// Len returns the number of cached decisions.
func (m *Memo) Len() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.contained)
}
