package containment

import (
	"testing"

	"repro/internal/cq"
)

func TestContainedInUnionPure(t *testing.T) {
	u := cq.NewUnion(
		mustQ("q(X) :- r(X,Y)"),
		mustQ("q(X) :- s(X)"),
	)
	if !ContainedInUnion(mustQ("q(X) :- r(X,Y), r(Y,Z)"), u) {
		t.Fatal("specialisation should be contained in union")
	}
	if !ContainedInUnion(mustQ("q(X) :- s(X), t(X)"), u) {
		t.Fatal("second disjunct should cover")
	}
	if ContainedInUnion(mustQ("q(X) :- t(X)"), u) {
		t.Fatal("uncovered query contained")
	}
	if ContainedInUnion(mustQ("q(X) :- r(X,Y)"), &cq.Union{}) {
		t.Fatal("empty union contains something")
	}
}

func TestUnionContained(t *testing.T) {
	u := cq.NewUnion(
		mustQ("q(X) :- r(X,Y), r(Y,Z)"),
		mustQ("q(X) :- r(X,X)"),
	)
	if !UnionContained(u, mustQ("q(X) :- r(X,Y)")) {
		t.Fatal("every member specialises r(X,Y)")
	}
	u.Add(mustQ("q(X) :- s(X)"))
	if UnionContained(u, mustQ("q(X) :- r(X,Y)")) {
		t.Fatal("s-member is not contained")
	}
}

func TestUnionContainedInUnion(t *testing.T) {
	small := cq.NewUnion(mustQ("q(X) :- r(X,X)"))
	big := cq.NewUnion(mustQ("q(X) :- r(X,Y)"), mustQ("q(X) :- s(X)"))
	if !UnionContainedInUnion(small, big) {
		t.Fatal("subset union not contained")
	}
	if UnionContainedInUnion(big, small) {
		t.Fatal("superset union contained in subset")
	}
}

func TestUnionEquivalent(t *testing.T) {
	q := mustQ("q(X) :- r(X,Y)")
	u := cq.NewUnion(
		mustQ("q(X) :- r(X,Y), r(Y,Z)"),
		mustQ("q(X) :- r(X,Y)"),
	)
	if !UnionEquivalent(u, q) {
		t.Fatal("union should be equivalent (second member equals q)")
	}
	u2 := cq.NewUnion(mustQ("q(X) :- r(X,Y), r(Y,Z)"))
	if UnionEquivalent(u2, q) {
		t.Fatal("strictly weaker union reported equivalent")
	}
}

func TestContainedInUnionWithComparisonsCaseSplit(t *testing.T) {
	// q: r(X), no constraint. Union: X <= 5 | X >= 5. Every linearisation
	// of X vs 5 is covered by one disjunct, but no single disjunct
	// contains q — the per-disjunct test would fail.
	q := mustQ("q(X) :- r(X)")
	u := cq.NewUnion(
		mustQ("q(X) :- r(X), X <= 5"),
		mustQ("q(X) :- r(X), X >= 5"),
	)
	if !ContainedInUnion(q, u) {
		t.Fatal("case-split union should contain the unconstrained query")
	}
	for _, m := range u.Queries {
		if Contained(q, m) {
			t.Fatal("single disjunct should not contain q")
		}
	}
	// Leaving a gap breaks containment.
	gap := cq.NewUnion(
		mustQ("q(X) :- r(X), X < 5"),
		mustQ("q(X) :- r(X), X > 5"),
	)
	if ContainedInUnion(q, gap) {
		t.Fatal("gap at X=5 ignored")
	}
}

func TestMinimizeUnion(t *testing.T) {
	u := cq.NewUnion(
		mustQ("q(X) :- r(X,Y)"),
		mustQ("q(X) :- r(X,Y), r(Y,Z)"), // subsumed by the first
		mustQ("q(X) :- s(X), s(X)"),     // member needing minimisation
	)
	m := MinimizeUnion(u)
	if m.Len() != 2 {
		t.Fatalf("MinimizeUnion kept %d members: %v", m.Len(), m)
	}
	for _, member := range m.Queries {
		if member.Name() == "q" && member.Predicates()[0] == "s" && len(member.Body) != 1 {
			t.Fatalf("member not minimised: %v", member)
		}
	}
	if !UnionContainedInUnion(u, m) || !UnionContainedInUnion(m, u) {
		t.Fatal("MinimizeUnion changed semantics")
	}
}

func TestMinimizeUnionMutualContainment(t *testing.T) {
	// Two equivalent members: exactly one must survive.
	u := cq.NewUnion(
		mustQ("q(X) :- r(X,Y)"),
		mustQ("q(A) :- r(A,B)"),
	)
	m := MinimizeUnion(u)
	if m.Len() != 1 {
		t.Fatalf("duplicate members kept: %v", m)
	}
}
