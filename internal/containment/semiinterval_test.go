package containment

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cq"
)

func TestSemiInterval(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"q(X) :- r(X)", true},
		{"q(X) :- r(X), X < 5", true},
		{"q(X) :- r(X,Y), X < 5, Y >= 2, X != 7", true},
		{"q(X) :- r(X,Y), X < Y", false},
		{"q(X) :- r(X,Y), X < 5, X <= Y", false},
		{"q(X) :- r(X), 3 < 5", true},
	}
	for _, c := range cases {
		if got := SemiInterval(mustQ(c.src)); got != c.want {
			t.Errorf("SemiInterval(%q) = %v want %v", c.src, got, c.want)
		}
	}
}

// randSemiIntervalPair generates random query pairs whose container is
// semi-interval, for cross-checking the fast dispatch against the complete
// test.
func randSemiIntervalPair(rng *rand.Rand) (q2, q1 *cq.Query) {
	gen := func(withVarVar bool) *cq.Query {
		nAtoms := 1 + rng.Intn(3)
		vars := []cq.Term{cq.Var("X"), cq.Var("Y"), cq.Var("Z")}
		body := make([]cq.Atom, nAtoms)
		for i := range body {
			body[i] = cq.NewAtom(
				fmt.Sprintf("p%d", rng.Intn(2)+1),
				vars[rng.Intn(len(vars))], vars[rng.Intn(len(vars))])
		}
		q := &cq.Query{Head: cq.NewAtom("q", body[0].Args[0]), Body: body}
		nComps := rng.Intn(3)
		ops := []cq.CompOp{cq.Lt, cq.Le, cq.Gt, cq.Ge, cq.Ne}
		for i := 0; i < nComps; i++ {
			v := vars[rng.Intn(len(vars))]
			// Only attach comparisons over variables present in the body.
			present := false
			for _, a := range q.Body {
				for _, t := range a.Args {
					if t == v {
						present = true
					}
				}
			}
			if !present {
				continue
			}
			var right cq.Term
			if withVarVar && rng.Intn(2) == 0 {
				right = vars[rng.Intn(len(vars))]
				presentR := false
				for _, a := range q.Body {
					for _, t := range a.Args {
						if t == right {
							presentR = true
						}
					}
				}
				if !presentR {
					continue
				}
			} else {
				right = cq.IntConst(int64(rng.Intn(6)))
			}
			q.Comparisons = append(q.Comparisons, cq.Comparison{
				Left: v, Op: ops[rng.Intn(len(ops))], Right: right,
			})
		}
		return q
	}
	return gen(true), gen(false) // q2 arbitrary, q1 semi-interval
}

// The fast semi-interval dispatch must agree with the exponential complete
// test on random instances.
func TestSemiIntervalDispatchMatchesComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	checked := 0
	for i := 0; i < 400; i++ {
		q2, q1 := randSemiIntervalPair(rng)
		if !SemiInterval(q1) {
			continue
		}
		if len(q1.Comparisons) == 0 {
			continue // exercised elsewhere
		}
		fast := ContainedSound(q2, q1)
		complete := ContainedComplete(q2, q1)
		if fast != complete {
			t.Fatalf("disagreement on\n  q2 = %v\n  q1 = %v\n  sound=%v complete=%v",
				q2, q1, fast, complete)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("too few instances checked: %d", checked)
	}
}
