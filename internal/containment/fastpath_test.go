package containment

import (
	"testing"

	"repro/internal/cq"
)

// The fast complete path: container has no comparisons, contained query's
// comparisons matter only through forced equalities and satisfiability.
func TestContainedFastPathForcedEqualities(t *testing.T) {
	// X<=Y and Y<=X force X=Y, which enables the mapping onto r(U,U).
	q1 := mustQ("q(X) :- r(X,X)")
	q2 := mustQ("q(A) :- r(A,B), A <= B, B <= A")
	if !Contained(q2, q1) {
		t.Fatal("forced equality not applied")
	}
	// Without the equalities there is no containment.
	q3 := mustQ("q(A) :- r(A,B), A <= B")
	if Contained(q3, q1) {
		t.Fatal("A<=B alone should not force A=B")
	}
}

func TestContainedFastPathEqualityViaConstant(t *testing.T) {
	q1 := mustQ("q(X) :- r(X,X)")
	q2 := mustQ("q(A) :- r(A,B), A = 5, B = 5")
	if !Contained(q2, q1) {
		t.Fatal("equality through a shared constant not applied")
	}
}

func TestContainedFastPathUnsatisfiable(t *testing.T) {
	q1 := mustQ("q(X) :- impossible(X)")
	q2 := mustQ("q(A) :- r(A), A < 2, A > 3")
	if !Contained(q2, q1) {
		t.Fatal("unsatisfiable query must be contained in everything")
	}
}

func TestMergeForcedEqualitiesDirect(t *testing.T) {
	q := mustQ("q(A) :- r(A,B), s(B,C), A <= B, B <= A, C = 7")
	norm, sat := mergeForcedEqualities(q)
	if !sat {
		t.Fatal("satisfiable query reported unsat")
	}
	// A and B collapse; C becomes the constant 7.
	vars := norm.Vars()
	if len(vars) != 1 {
		t.Fatalf("vars after merge = %v (query %v)", vars, norm)
	}
	foundConst := false
	for _, a := range norm.Body {
		for _, term := range a.Args {
			if term == cq.Const("7") {
				foundConst = true
			}
		}
	}
	if !foundConst {
		t.Fatalf("constant substitution missing: %v", norm)
	}
	// Unsatisfiable input.
	bad := mustQ("q(A) :- r(A), A < 1, A > 2")
	if _, sat := mergeForcedEqualities(bad); sat {
		t.Fatal("unsat not detected")
	}
	// No forced equalities: query returned unchanged.
	plain := mustQ("q(A) :- r(A,B), A < B")
	norm2, _ := mergeForcedEqualities(plain)
	if norm2.String() != plain.String() {
		t.Fatalf("query changed without forced equalities: %v", norm2)
	}
}

// The fast path must agree with the full complete test.
func TestContainedFastPathAgreesWithComplete(t *testing.T) {
	cases := []struct{ q2, q1 string }{
		{"q(A) :- r(A,B), A <= B, B <= A", "q(X) :- r(X,X)"},
		{"q(A) :- r(A,B), A <= B", "q(X) :- r(X,X)"},
		{"q(A) :- r(A,B), A = 3", "q(X) :- r(X,Y)"},
		{"q(A) :- r(A,B), A != B", "q(X) :- r(X,Y)"},
		{"q(A) :- r(A,B), A < 2, A > 3", "q(X) :- s(X)"},
		{"q(A) :- r(A,A)", "q(X) :- r(X,Y)"},
	}
	for _, c := range cases {
		q2, q1 := mustQ(c.q2), mustQ(c.q1)
		fast := Contained(q2, q1)
		complete := ContainedComplete(q2, q1)
		if fast != complete {
			t.Errorf("fast path disagrees on (%q ⊑ %q): fast=%v complete=%v", c.q2, c.q1, fast, complete)
		}
	}
}
