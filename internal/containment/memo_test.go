package containment

import (
	"sync"
	"testing"

	"repro/internal/cq"
)

func TestMemoContainedAgreesAndHits(t *testing.T) {
	m := NewMemo()
	q1 := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	q2 := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y), t(X)")
	// α-variant of q2: must hit the same memo entry.
	q2b := cq.MustParseQuery("q(A,B) :- t(A), s(C,B), r(A,C)")

	if got, want := m.Contained(q2, q1), Contained(q2, q1); got != want {
		t.Fatalf("memo Contained = %v, direct = %v", got, want)
	}
	if got, want := m.Contained(q2b, q1), Contained(q2b, q1); got != want {
		t.Fatalf("memo Contained (α-variant) = %v, direct = %v", got, want)
	}
	hits, misses := m.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1 (α-variant should hit)", hits, misses)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestMemoEquivalent(t *testing.T) {
	m := NewMemo()
	a := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	b := cq.MustParseQuery("q(U,V) :- s(W,V), r(U,W)")
	if !m.Equivalent(a, b) {
		t.Fatal("α-equivalent queries reported not equivalent")
	}
	c := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Y,Z)")
	if m.Equivalent(a, c) {
		t.Fatal("different join patterns reported equivalent")
	}
}

func TestNilMemoDelegates(t *testing.T) {
	var m *Memo
	a := cq.MustParseQuery("q(X) :- r(X,Y)")
	b := cq.MustParseQuery("q(X) :- r(X,Y), r(Y,Z)")
	if got, want := m.Contained(b, a), Contained(b, a); got != want {
		t.Fatalf("nil memo Contained = %v, want %v", got, want)
	}
	if h, miss := m.Stats(); h != 0 || miss != 0 {
		t.Fatal("nil memo stats should be zero")
	}
}

func TestMemoConcurrent(t *testing.T) {
	m := NewMemo()
	a := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	b := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y), t(Z)")
	want := Contained(b, a)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if m.Contained(b, a) != want {
					t.Error("concurrent memo answer changed")
					return
				}
			}
		}()
	}
	wg.Wait()
}
