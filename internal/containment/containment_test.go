package containment

import (
	"testing"
	"testing/quick"

	"repro/internal/cq"
)

func mustQ(src string) *cq.Query { return cq.MustParseQuery(src) }

func TestFindMappingIdentity(t *testing.T) {
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	m, ok := FindMapping(q, q)
	if !ok {
		t.Fatal("no identity mapping")
	}
	for _, v := range q.Vars() {
		if m.ApplyTerm(v) != v {
			t.Fatalf("identity mapping maps %v to %v", v, m.ApplyTerm(v))
		}
	}
}

func TestFindMappingBasic(t *testing.T) {
	// q2 = q1 with an extra join: q2 ⊑ q1, witnessed by mapping q1 -> q2.
	q1 := mustQ("q(X) :- r(X,Y)")
	q2 := mustQ("q(X) :- r(X,Y), r(Y,Z)")
	if _, ok := FindMapping(q1, q2); !ok {
		t.Fatal("expected mapping q1 -> q2")
	}
	if _, ok := FindMapping(q2, q1); ok {
		t.Fatal("unexpected mapping q2 -> q1 (r(Y,Z) has no image)")
	}
}

func TestFindMappingSelfJoinCollapse(t *testing.T) {
	// Classic: path of length 2 maps onto a self-loop.
	path := mustQ("q(X) :- e(X,Y), e(Y,Z)")
	loop := mustQ("q(X) :- e(X,X)")
	if _, ok := FindMapping(path, loop); !ok {
		t.Fatal("path should map onto self-loop (collapse Y,Z to X)")
	}
	if _, ok := FindMapping(loop, path); ok {
		t.Fatal("self-loop must not map onto path")
	}
}

func TestFindMappingHeadConstants(t *testing.T) {
	a := mustQ("q(a) :- r(a)")
	b := mustQ("q(a) :- r(a), s(b)")
	if _, ok := FindMapping(a, b); !ok {
		t.Fatal("head constants should match")
	}
	c := mustQ("q(b) :- r(b)")
	if _, ok := FindMapping(a, c); ok {
		t.Fatal("distinct head constants matched")
	}
}

func TestFindMappingArityMismatch(t *testing.T) {
	a := mustQ("q(X) :- r(X)")
	b := mustQ("q(X,Y) :- r(X), r(Y)")
	if _, ok := FindMapping(a, b); ok {
		t.Fatal("head arity mismatch accepted")
	}
}

func TestFindMappingConstantsInBody(t *testing.T) {
	gen := mustQ("q(X) :- r(X,Y)")
	spec := mustQ("q(X) :- r(X,5)")
	if _, ok := FindMapping(gen, spec); !ok {
		t.Fatal("variable should map to constant")
	}
	if _, ok := FindMapping(spec, gen); ok {
		t.Fatal("constant must not map to variable")
	}
}

func TestFindAllMappingsCount(t *testing.T) {
	// Two r-atoms, pattern r(X,Y) with free X,Y (head constant): both
	// targets usable.
	from := mustQ("q(c) :- r(X,Y)")
	to := mustQ("q(c) :- r(a,b), r(b,d)")
	if n := CountMappings(from, to); n != 2 {
		t.Fatalf("CountMappings = %d want 2", n)
	}
}

func TestFindAllMappingsEarlyStop(t *testing.T) {
	from := mustQ("q(c) :- r(X,Y)")
	to := mustQ("q(c) :- r(a,b), r(b,d)")
	calls := 0
	FindAllMappings(from, to, func(Mapping) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop ignored, calls = %d", calls)
	}
}

func TestFindBodyMappings(t *testing.T) {
	view := mustQ("v(A) :- r(A,B), s(B)")
	query := mustQ("q(X) :- r(X,Y), s(Y), t(X)")
	n := 0
	FindBodyMappings(view, query, nil, func(m Mapping) bool {
		if m.ApplyTerm(cq.Var("A")) != cq.Var("X") || m.ApplyTerm(cq.Var("B")) != cq.Var("Y") {
			t.Errorf("unexpected mapping %v", m)
		}
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("body mappings = %d want 1", n)
	}
	// Initial bindings are respected.
	n = 0
	FindBodyMappings(view, query, cq.Subst{"A": cq.Var("Z")}, func(Mapping) bool {
		n++
		return true
	})
	if n != 0 {
		t.Fatal("initial binding ignored")
	}
}

func TestContainedPureCQ(t *testing.T) {
	cases := []struct {
		q2, q1 string
		want   bool
	}{
		// Specialisation is contained in generalisation.
		{"q(X) :- r(X,Y), r(Y,Z)", "q(X) :- r(X,Y)", true},
		{"q(X) :- r(X,Y)", "q(X) :- r(X,Y), r(Y,Z)", false},
		// Equivalent modulo renaming.
		{"q(A) :- r(A,B)", "q(X) :- r(X,Y)", true},
		// Different predicates.
		{"q(X) :- r(X)", "q(X) :- s(X)", false},
		// Constant specialisation.
		{"q(X) :- r(X,5)", "q(X) :- r(X,Y)", true},
		{"q(X) :- r(X,Y)", "q(X) :- r(X,5)", false},
		// Head projection matters.
		{"q(X,Y) :- r(X,Y)", "q(X,X) :- r(X,X)", false},
		{"q(X,X) :- r(X,X)", "q(X,Y) :- r(X,Y)", true},
	}
	for _, c := range cases {
		q2, q1 := mustQ(c.q2), mustQ(c.q1)
		if got := Contained(q2, q1); got != c.want {
			t.Errorf("Contained(%q ⊑ %q) = %v want %v", c.q2, c.q1, got, c.want)
		}
	}
}

func TestEquivalentPureCQ(t *testing.T) {
	a := mustQ("q(X) :- r(X,Y), r(X,Z)")
	b := mustQ("q(X) :- r(X,Y)")
	if !Equivalent(a, b) {
		t.Fatal("redundant self-join should be equivalent to single atom")
	}
	c := mustQ("q(X) :- r(X,Y), r(Y,X)")
	if Equivalent(b, c) {
		t.Fatal("cycle query equivalent to edge query")
	}
}

func TestContainedSoundComparisons(t *testing.T) {
	cases := []struct {
		q2, q1 string
		want   bool
	}{
		// Tighter range contained in looser.
		{"q(X) :- r(X), X > 5", "q(X) :- r(X), X > 3", true},
		{"q(X) :- r(X), X > 3", "q(X) :- r(X), X > 5", false},
		// Equality implies both bounds.
		{"q(X) :- r(X), X = 4", "q(X) :- r(X), X >= 4", true},
		// Unsatisfiable query contained in anything.
		{"q(X) :- r(X), X < 2, X > 3", "q(X) :- s(X)", true},
		// Variable-to-variable comparisons.
		{"q(X,Y) :- r(X,Y), X < Y", "q(X,Y) :- r(X,Y), X <= Y", true},
		{"q(X,Y) :- r(X,Y), X <= Y", "q(X,Y) :- r(X,Y), X < Y", false},
	}
	for _, c := range cases {
		q2, q1 := mustQ(c.q2), mustQ(c.q1)
		if got := ContainedSound(q2, q1); got != c.want {
			t.Errorf("ContainedSound(%q ⊑ %q) = %v want %v", c.q2, c.q1, got, c.want)
		}
		// The complete test must agree whenever the sound test says yes.
		if c.want && !ContainedComplete(q2, q1) {
			t.Errorf("complete test disagrees with sound yes on (%q ⊑ %q)", c.q2, c.q1)
		}
	}
}

func TestContainedCompleteBeatsSound(t *testing.T) {
	// Classical witness that the single-mapping test is incomplete:
	//   Q1: q() :- r(U,V), U <= V
	//   Q2: q() :- r(X,Y), r(Y,X)
	// Q2 ⊑ Q1: in any model, either X <= Y (map (U,V)->(X,Y)) or
	// Y <= X (map (U,V)->(Y,X)); different linearisations need
	// different mappings, so no single mapping works.
	q1 := mustQ("q() :- r(U,V), U <= V")
	q2 := mustQ("q() :- r(X,Y), r(Y,X)")
	if ContainedSound(q2, q1) {
		t.Fatal("sound test unexpectedly succeeded — witness broken")
	}
	if !ContainedComplete(q2, q1) {
		t.Fatal("complete test failed on the classical multi-mapping witness")
	}
	if !Contained(q2, q1) {
		t.Fatal("Contained should dispatch to the complete test")
	}
}

func TestContainedCompleteNegative(t *testing.T) {
	q1 := mustQ("q(X) :- r(X), X > 5")
	q2 := mustQ("q(X) :- r(X), X > 3")
	if ContainedComplete(q2, q1) {
		t.Fatal("X>3 contained in X>5?")
	}
}

func TestContainedCompleteWithConstants(t *testing.T) {
	// q2's range (3,5) sits inside q1's range (2,6): containment holds
	// and requires ordering constants of both queries.
	q1 := mustQ("q(X) :- r(X), X > 2, X < 6")
	q2 := mustQ("q(X) :- r(X), X > 3, X < 5")
	if !ContainedComplete(q2, q1) {
		t.Fatal("(3,5) should be contained in (2,6)")
	}
	if ContainedComplete(q1, q2) {
		t.Fatal("(2,6) contained in (3,5)?")
	}
}

func TestMinimize(t *testing.T) {
	cases := []struct {
		src      string
		wantLen  int
		wantComp int
	}{
		{"q(X) :- r(X,Y), r(X,Z)", 1, 0},
		{"q(X) :- r(X,Y), r(Y,Z), r(X,W)", 2, 0},
		{"q(X) :- e(X,Y), e(Y,Z), e(X,X)", 1, 0}, // collapses onto loop
		{"q(X,Y) :- r(X,Y)", 1, 0},
		{"q(X) :- r(X,Y), X < Y, X <= Y", 1, 1},  // implied comparison dropped
		{"q(X) :- r(X,Y), r(Y,X), r(X,Z)", 2, 0}, // r(X,Z) redundant via Y
	}
	for _, c := range cases {
		q := mustQ(c.src)
		m := Minimize(q)
		if len(m.Body) != c.wantLen || len(m.Comparisons) != c.wantComp {
			t.Errorf("Minimize(%q) = %v (len %d, comps %d) want len %d comps %d",
				c.src, m, len(m.Body), len(m.Comparisons), c.wantLen, c.wantComp)
		}
		if !Equivalent(q, m) {
			t.Errorf("Minimize(%q) not equivalent: %v", c.src, m)
		}
		if q.String() == "" {
			t.Error("original mutated")
		}
	}
}

func TestMinimizeKeepsNonRedundant(t *testing.T) {
	q := mustQ("q(X) :- r(X,Y), s(Y,Z)")
	m := Minimize(q)
	if len(m.Body) != 2 {
		t.Fatalf("non-redundant atoms removed: %v", m)
	}
	if !IsMinimal(q) {
		t.Fatal("IsMinimal false on minimal query")
	}
	if IsMinimal(mustQ("q(X) :- r(X,Y), r(X,Z)")) {
		t.Fatal("IsMinimal true on redundant query")
	}
}

func TestFreeze(t *testing.T) {
	q := mustQ("q(X) :- r(X,Y), s(Y,a)")
	facts, head := Freeze(q)
	if len(facts) != 2 {
		t.Fatalf("facts = %v", facts)
	}
	for _, f := range facts {
		if !f.IsGround() {
			t.Fatalf("frozen fact not ground: %v", f)
		}
	}
	if !head.IsGround() {
		t.Fatalf("frozen head not ground: %v", head)
	}
	// Constants survive freezing unchanged.
	if facts[1].Args[1] != cq.Const("a") {
		t.Fatalf("constant renamed: %v", facts[1])
	}
}

// Property: containment is reflexive.
func TestQuickContainmentReflexive(t *testing.T) {
	f := func(a, b, c uint8) bool {
		q := genQuery(a, b, c)
		return Contained(q, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Minimize preserves equivalence and is idempotent.
func TestQuickMinimizeEquivalentIdempotent(t *testing.T) {
	f := func(a, b, c uint8) bool {
		q := genQuery(a, b, c)
		m := Minimize(q)
		if !Equivalent(q, m) {
			return false
		}
		m2 := Minimize(m)
		return len(m2.Body) == len(m.Body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding an atom can only specialise (q+atom ⊑ q).
func TestQuickAddingAtomSpecialises(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		q := genQuery(a, b, c)
		ext := q.Clone()
		vars := q.Vars()
		v1 := vars[int(d)%len(vars)]
		v2 := vars[int(d/16)%len(vars)]
		ext.Body = append(ext.Body, cq.NewAtom("extra", v1, v2))
		return Contained(ext, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// genQuery builds a deterministic pseudo-random pure CQ from fuzz bytes.
func genQuery(a, b, c uint8) *cq.Query {
	preds := []string{"r", "s", "t"}
	nAtoms := int(a)%4 + 1
	nVars := int(b)%4 + 2
	vars := make([]cq.Term, nVars)
	for i := range vars {
		vars[i] = cq.Var("V" + string(rune('0'+i)))
	}
	body := make([]cq.Atom, nAtoms)
	for i := range body {
		p := preds[(int(c)+i)%len(preds)]
		body[i] = cq.NewAtom(p, vars[(int(c)+i)%nVars], vars[(int(c)+i+1)%nVars])
	}
	return &cq.Query{Head: cq.NewAtom("q", body[0].Args[0]), Body: body}
}
