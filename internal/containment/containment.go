package containment

import (
	"repro/internal/constraints"
	"repro/internal/cq"
)

// Contained reports whether q2 ⊑ q1, i.e. q2's answers are a subset of q1's
// on every database. For pure conjunctive queries this is the Chandra–Merlin
// containment-mapping test; when either query carries comparison predicates
// the complete linearisation test is used (exponential in the number of
// terms, per the paper's lower bound — see ContainedSound for the fast
// incomplete variant).
func Contained(q2, q1 *cq.Query) bool {
	if len(q1.Comparisons) == 0 {
		if len(q2.Comparisons) == 0 {
			_, ok := FindMapping(q1, q2)
			return ok
		}
		// q1 is comparison-free, so q2's comparisons matter only through
		// the equalities they force and their satisfiability: merge
		// provably-equal terms of q2, then run the pure mapping test.
		// This avoids the exponential linearisation enumeration.
		norm, sat := mergeForcedEqualities(q2)
		if !sat {
			return true
		}
		_, ok := FindMapping(q1, norm)
		return ok
	}
	if SemiInterval(q1) {
		// Klug's tractable case: when the containing query's comparisons
		// are all variable-vs-constant (semi-interval), the single-mapping
		// test is complete — the incompleteness witnesses all need
		// variable-to-variable comparisons in the container.
		return ContainedSound(q2, q1)
	}
	return ContainedComplete(q2, q1)
}

// SemiInterval reports whether every comparison of q compares a variable
// with a constant (or two constants) — the paper's tractable comparison
// fragment for the containing query.
func SemiInterval(q *cq.Query) bool {
	for _, c := range q.Comparisons {
		if c.Left.IsVar() && c.Right.IsVar() {
			return false
		}
	}
	return true
}

// mergeForcedEqualities rewrites q so that terms its comparisons force to
// be equal are syntactically identified (variables are replaced by their
// representative; a class containing a constant uses the constant). The
// second result is false when q's comparisons are unsatisfiable.
func mergeForcedEqualities(q *cq.Query) (*cq.Query, bool) {
	set := constraints.NewSet(q.Comparisons)
	if !set.Satisfiable() {
		return nil, false
	}
	s := cq.NewSubst()
	terms := set.Terms()
	for i, a := range terms {
		if !a.IsVar() {
			continue
		}
		for j, b := range terms {
			if i == j {
				continue
			}
			if b.IsVar() && j > i {
				continue // one direction suffices for var-var pairs
			}
			if set.Implies(cq.Comparison{Left: a, Op: cq.Eq, Right: b}) {
				s[a.Lex] = b
				break
			}
		}
	}
	if len(s) == 0 {
		return q, true
	}
	return s.Resolved().ApplyQuery(q), true
}

// ContainedSound is a sound but incomplete test for q2 ⊑ q1 in the presence
// of comparisons: it searches for a single containment mapping μ from q1 to
// q2 such that q2's comparisons imply μ(q1's comparisons). It runs in time
// polynomial in the number of mappings examined. A true answer is always
// correct; false may be a false negative (the complete test may still
// succeed by combining different mappings on different linearisations).
func ContainedSound(q2, q1 *cq.Query) bool {
	c2 := constraints.NewSet(q2.Comparisons)
	if !c2.Satisfiable() {
		return true // q2 is empty on every database
	}
	found := false
	FindAllMappings(q1, q2, func(m Mapping) bool {
		ext := c2.Clone()
		ok := true
		for _, c := range q1.Comparisons {
			if !ext.Implies(m.ApplyComparison(c)) {
				ok = false
				break
			}
		}
		if ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// ContainedComplete is the complete test for q2 ⊑ q1 with comparison
// predicates (Klug / van der Meyden): q2 ⊑ q1 iff for every total ordering
// (linearisation) λ of q2's terms — extended with the constants of q1 —
// that is consistent with q2's comparisons, there is a containment mapping
// μ from q1 to q2 with λ ⊨ μ(q1's comparisons). The number of
// linearisations is exponential in the number of terms; the paper shows
// this is unavoidable in general (Π₂ᵖ-hardness of containment).
func ContainedComplete(q2, q1 *cq.Query) bool {
	base := constraints.NewSet(q2.Comparisons)
	if !base.Satisfiable() {
		return true
	}
	if len(q1.Comparisons) == 0 && len(q2.Comparisons) == 0 {
		_, ok := FindMapping(q1, q2)
		return ok
	}
	// The linearisation domain: q2's variables and constants plus the
	// constants of q1 (mappings send q1's comparison terms into this set).
	var domain []cq.Term
	domain = append(domain, q2.Vars()...)
	domain = append(domain, q2.Constants()...)
	domain = append(domain, q1.Constants()...)

	covered := true
	constraints.EnumerateLinearizations(domain, base, func(l constraints.Linearization) bool {
		lam := l.Set()
		// Identify the terms this linearisation declares equal: the
		// canonical database of q2 under λ has them merged, so the
		// mapping search must target the merged query.
		merged := l.MergeSubst().ApplyQuery(q2)
		okForThis := false
		FindAllMappings(q1, merged, func(m Mapping) bool {
			for _, c := range q1.Comparisons {
				if !lam.Implies(m.ApplyComparison(c)) {
					return true // try next mapping
				}
			}
			okForThis = true
			return false
		})
		if !okForThis {
			covered = false
			return false // stop: found an uncovered linearisation
		}
		return true
	})
	return covered
}

// Equivalent reports whether q1 ≡ q2 (mutual containment, exact test).
func Equivalent(q1, q2 *cq.Query) bool {
	return Contained(q1, q2) && Contained(q2, q1)
}

// EquivalentSound is the fast, sound-but-incomplete equivalence test for
// queries with comparisons.
func EquivalentSound(q1, q2 *cq.Query) bool {
	return ContainedSound(q1, q2) && ContainedSound(q2, q1)
}

// Minimize returns an equivalent query with a minimal body (the core): no
// body atom can be removed without changing the query's meaning, and no
// comparison is implied by the remaining ones. The input is not modified.
// By Chandra–Merlin the result is unique up to variable renaming for pure
// conjunctive queries.
func Minimize(q *cq.Query) *cq.Query {
	cur := q.Clone()
	// Drop redundant body atoms one at a time. Removing an atom weakens
	// the query (cur ⊑ candidate always holds), so the atom is redundant
	// iff candidate ⊑ cur.
	for changed := true; changed; {
		changed = false
		for i := range cur.Body {
			if len(cur.Body) == 1 {
				break // keep safety: at least one subgoal
			}
			cand := cur.Clone()
			cand.Body = append(cand.Body[:i], cand.Body[i+1:]...)
			if cand.Validate() != nil {
				continue // removal would make the query unsafe
			}
			if Contained(cand, cur) {
				cur = cand
				changed = true
				break
			}
		}
	}
	// Drop comparisons implied by the rest.
	for i := 0; i < len(cur.Comparisons); {
		rest := make([]cq.Comparison, 0, len(cur.Comparisons)-1)
		rest = append(rest, cur.Comparisons[:i]...)
		rest = append(rest, cur.Comparisons[i+1:]...)
		if constraints.NewSet(rest).Implies(cur.Comparisons[i]) {
			cur.Comparisons = rest
			continue
		}
		i++
	}
	return cur
}

// IsMinimal reports whether no body atom of q can be removed while
// preserving equivalence.
func IsMinimal(q *cq.Query) bool {
	return len(Minimize(q).Body) == len(q.Body)
}

// Freeze produces the canonical database of q: each variable is replaced by
// a distinguished fresh constant. It returns the frozen body facts and the
// frozen head atom. The canonical database is the classical tool behind the
// containment-mapping theorem and is used by tests and the evaluator.
func Freeze(q *cq.Query) (facts []cq.Atom, head cq.Atom) {
	s := cq.NewSubst()
	for _, v := range q.Vars() {
		s[v.Lex] = cq.Const("⟨" + v.Lex + "⟩") // ⟨X⟩: cannot collide with parsed constants
	}
	for _, a := range q.Body {
		facts = append(facts, s.ApplyAtom(a))
	}
	return facts, s.ApplyAtom(q.Head)
}
