package containment

import (
	"repro/internal/constraints"
	"repro/internal/cq"
)

// ContainedInUnion reports whether q ⊑ u for a union of conjunctive
// queries. For pure conjunctive queries this uses the Sagiv–Yannakakis
// theorem: q ⊑ ∪ᵢ Qᵢ iff q ⊑ Qᵢ for some i. With comparison predicates the
// per-disjunct test is no longer complete (different linearisations of q
// may be covered by different disjuncts), so the complete linearisation
// test is used instead.
func ContainedInUnion(q *cq.Query, u *cq.Union) bool {
	if u.Len() == 0 {
		return false
	}
	pure := len(q.Comparisons) == 0
	if pure {
		for _, m := range u.Queries {
			pure = pure && len(m.Comparisons) == 0
		}
	}
	if pure {
		for _, m := range u.Queries {
			if Contained(q, m) {
				return true
			}
		}
		return false
	}
	return containedInUnionComplete(q, u)
}

// containedInUnionComplete: q ⊑ u iff every linearisation of q's terms
// (extended with the constants of u's members) consistent with q's
// comparisons is covered by some member mapping.
func containedInUnionComplete(q *cq.Query, u *cq.Union) bool {
	base := constraints.NewSet(q.Comparisons)
	if !base.Satisfiable() {
		return true
	}
	var domain []cq.Term
	domain = append(domain, q.Vars()...)
	domain = append(domain, q.Constants()...)
	for _, m := range u.Queries {
		domain = append(domain, m.Constants()...)
	}
	covered := true
	constraints.EnumerateLinearizations(domain, base, func(l constraints.Linearization) bool {
		lam := l.Set()
		merged := l.MergeSubst().ApplyQuery(q)
		okForThis := false
		for _, m := range u.Queries {
			FindAllMappings(m, merged, func(mp Mapping) bool {
				for _, c := range m.Comparisons {
					if !lam.Implies(mp.ApplyComparison(c)) {
						return true
					}
				}
				okForThis = true
				return false
			})
			if okForThis {
				break
			}
		}
		if !okForThis {
			covered = false
			return false
		}
		return true
	})
	return covered
}

// UnionContained reports whether u ⊑ q: every member of the union is
// contained in q.
func UnionContained(u *cq.Union, q *cq.Query) bool {
	for _, m := range u.Queries {
		if !Contained(m, q) {
			return false
		}
	}
	return true
}

// UnionContainedInUnion reports whether u1 ⊑ u2.
func UnionContainedInUnion(u1, u2 *cq.Union) bool {
	for _, m := range u1.Queries {
		if !ContainedInUnion(m, u2) {
			return false
		}
	}
	return true
}

// UnionEquivalent reports whether u ≡ q for a UCQ and a CQ.
func UnionEquivalent(u *cq.Union, q *cq.Query) bool {
	return UnionContained(u, q) && ContainedInUnion(q, u)
}

// MinimizeUnion removes members subsumed by other members and minimises
// each surviving member. The result is equivalent to the input.
func MinimizeUnion(u *cq.Union) *cq.Union {
	out := &cq.Union{}
	kept := make([]*cq.Query, 0, u.Len())
	for _, m := range u.Queries {
		kept = append(kept, Minimize(m))
	}
	for i, m := range kept {
		subsumed := false
		for j, other := range kept {
			if i == j {
				continue
			}
			if Contained(m, other) {
				// Break ties deterministically: drop the later of two
				// mutually contained members.
				if !Contained(other, m) || j < i {
					subsumed = true
					break
				}
			}
		}
		if !subsumed {
			out.Add(m)
		}
	}
	return out
}
