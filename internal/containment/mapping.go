// Package containment implements containment, equivalence and minimisation
// of conjunctive queries, the technical core of "Answering Queries Using
// Views" (PODS 1995).
//
// For pure conjunctive queries the Chandra–Merlin theorem applies:
// Q2 ⊑ Q1 iff there is a containment mapping from Q1 to Q2. For queries
// with arithmetic comparisons the package provides both the standard sound
// homomorphism test and the complete (exponential) linearisation test; the
// paper's lower bounds show the exponential cannot be avoided in general.
package containment

import (
	"repro/internal/cq"
)

// Mapping is a containment mapping: a substitution over the source query's
// variables. It maps the source head to the target head positionally and
// every source body atom to some target body atom.
type Mapping = cq.Subst

// FindMapping returns a containment mapping from `from` onto `to`, or
// ok=false if none exists. Head predicate names are ignored; head arities
// must agree and head arguments map positionally.
func FindMapping(from, to *cq.Query) (Mapping, bool) {
	var found Mapping
	FindAllMappings(from, to, func(m Mapping) bool {
		found = m.Clone()
		return false
	})
	return found, found != nil
}

// FindAllMappings enumerates containment mappings from `from` onto `to`,
// invoking yield for each. Enumeration stops early when yield returns
// false. The substitution passed to yield is reused across calls; clone it
// if it must outlive the callback.
func FindAllMappings(from, to *cq.Query, yield func(Mapping) bool) {
	if len(from.Head.Args) != len(to.Head.Args) {
		return
	}
	s := cq.NewSubst()
	// Bind head arguments positionally.
	for i, ft := range from.Head.Args {
		tt := to.Head.Args[i]
		if ft.IsVar() {
			if !s.Bind(ft.Lex, tt) {
				return
			}
		} else if ft != tt {
			return
		}
	}
	srch := newSearch(from, to)
	srch.run(s, yield)
}

// FindBodyMappings enumerates substitutions over `from`'s variables that map
// every body atom of `from` to some body atom of `to`, starting from the
// given initial bindings (which may be nil). Heads are ignored entirely —
// this is the primitive used by the rewriting engine, where view bodies are
// mapped into query bodies.
func FindBodyMappings(from, to *cq.Query, initial cq.Subst, yield func(Mapping) bool) {
	s := cq.NewSubst()
	for k, v := range initial {
		s[k] = v
	}
	srch := newSearch(from, to)
	srch.run(s, yield)
}

// search holds the prepared state for one mapping enumeration.
type search struct {
	atoms   []cq.Atom            // source atoms in search order
	targets map[string][]cq.Atom // target atoms by predicate
}

func newSearch(from, to *cq.Query) *search {
	targets := make(map[string][]cq.Atom)
	for _, a := range to.Body {
		targets[a.Pred] = append(targets[a.Pred], a)
	}
	// Order source atoms connectivity-first: repeatedly pick the atom with
	// the most variables already bound by earlier atoms, breaking ties by
	// smaller candidate set. This keeps the backtracking search from
	// enumerating cartesian products of unconnected subgoals (critical on
	// clique-shaped patterns, the paper's NP-hardness regime).
	n := len(from.Body)
	atoms := make([]cq.Atom, 0, n)
	used := make([]bool, n)
	bound := make(map[string]bool)
	for len(atoms) < n {
		best, bestBound, bestCand := -1, -1, 0
		for i, a := range from.Body {
			if used[i] {
				continue
			}
			nb := 0
			for _, t := range a.Args {
				if t.IsConst() || bound[t.Lex] {
					nb++
				}
			}
			cand := len(targets[a.Pred])
			if best == -1 || nb > bestBound || nb == bestBound && cand < bestCand {
				best, bestBound, bestCand = i, nb, cand
			}
		}
		used[best] = true
		atoms = append(atoms, from.Body[best])
		for _, t := range from.Body[best].Args {
			if t.IsVar() {
				bound[t.Lex] = true
			}
		}
	}
	return &search{atoms: atoms, targets: targets}
}

// run backtracks over the source atoms. It reports false if yield asked to
// stop.
func (s *search) run(subst cq.Subst, yield func(Mapping) bool) bool {
	return s.step(0, subst, yield)
}

func (s *search) step(i int, subst cq.Subst, yield func(Mapping) bool) bool {
	if i == len(s.atoms) {
		return yield(subst)
	}
	atom := s.atoms[i]
	for _, target := range s.targets[atom.Pred] {
		trail := matchWithTrail(subst, atom, target)
		if trail == nil {
			continue
		}
		if !s.step(i+1, subst, yield) {
			return false
		}
		undo(subst, trail)
	}
	return true
}

// matchWithTrail extends subst so that subst(pattern) == target, recording
// newly bound variables. It returns nil on failure (after undoing any
// partial bindings) and the trail of added variable names on success. A
// successful match of an atom with no new bindings returns a non-nil empty
// trail.
func matchWithTrail(subst cq.Subst, pattern, target cq.Atom) []string {
	if pattern.Pred != target.Pred || len(pattern.Args) != len(target.Args) {
		return nil
	}
	trail := make([]string, 0, len(pattern.Args))
	for i := range pattern.Args {
		pt, tt := pattern.Args[i], target.Args[i]
		if pt.IsVar() {
			if old, ok := subst[pt.Lex]; ok {
				if old != tt {
					undo(subst, trail)
					return nil
				}
				continue
			}
			subst[pt.Lex] = tt
			trail = append(trail, pt.Lex)
			continue
		}
		if pt != tt {
			undo(subst, trail)
			return nil
		}
	}
	return trail
}

func undo(subst cq.Subst, trail []string) {
	for _, v := range trail {
		delete(subst, v)
	}
}

// CountMappings returns the number of containment mappings from `from` onto
// `to`. Intended for tests and diagnostics.
func CountMappings(from, to *cq.Query) int {
	n := 0
	FindAllMappings(from, to, func(Mapping) bool {
		n++
		return true
	})
	return n
}
