package bucket

import (
	"testing"

	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/storage"
)

func mustQ(src string) *cq.Query { return cq.MustParseQuery(src) }

func viewSet(srcs ...string) *core.ViewSet {
	vs := make([]*cq.Query, len(srcs))
	for i, s := range srcs {
		vs[i] = mustQ(s)
	}
	return core.MustNewViewSet(vs...)
}

func TestBucketsBasic(t *testing.T) {
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	vs := viewSet(
		"v1(A,B) :- r(A,B)",
		"v2(A,B) :- s(A,B)",
		"v3(A) :- t(A)",
	)
	buckets := Buckets(q, vs)
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if len(buckets[0]) != 1 || buckets[0][0].View.Name() != "v1" {
		t.Fatalf("bucket 0 = %v", buckets[0])
	}
	if len(buckets[1]) != 1 || buckets[1][0].View.Name() != "v2" {
		t.Fatalf("bucket 1 = %v", buckets[1])
	}
}

func TestBucketRejectsHiddenHeadVar(t *testing.T) {
	q := mustQ("q(X,Y) :- r(X,Y)")
	// The view projects Y away: cannot cover a subgoal needing head var Y.
	vs := viewSet("v(A) :- r(A,B)")
	buckets := Buckets(q, vs)
	if len(buckets[0]) != 0 {
		t.Fatalf("bucket should be empty: %v", buckets[0])
	}
}

func TestBucketRejectsConstantOnExistential(t *testing.T) {
	q := mustQ("q(X) :- r(X,5)")
	vs := viewSet("v(A) :- r(A,B)")
	buckets := Buckets(q, vs)
	if len(buckets[0]) != 0 {
		t.Fatalf("existential cannot enforce the constant: %v", buckets[0])
	}
	// A view exposing the column can.
	vs2 := viewSet("w(A,B) :- r(A,B)")
	buckets2 := Buckets(q, vs2)
	if len(buckets2[0]) != 1 {
		t.Fatalf("bucket = %v", buckets2[0])
	}
}

func TestBucketAllowsExistentialJoinVar(t *testing.T) {
	// Z is existential in q; a view hiding it still enters the bucket
	// (the combination step decides usefulness).
	q := mustQ("q(X) :- r(X,Z), s(Z)")
	vs := viewSet("v(A) :- r(A,B)")
	buckets := Buckets(q, vs)
	if len(buckets[0]) != 1 {
		t.Fatalf("bucket = %v", buckets[0])
	}
}

func TestRewriteEquivalentCase(t *testing.T) {
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	vs := viewSet("v1(A,B) :- r(A,B)", "v2(A,B) :- s(A,B)")
	u, st, err := Rewrite(q, vs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() == 0 {
		t.Fatal("no rewriting found")
	}
	exp, err := core.ExpandUnion(u, vs)
	if err != nil {
		t.Fatal(err)
	}
	if !containment.UnionContained(exp, q) {
		t.Fatal("rewriting not contained in query")
	}
	if !containment.ContainedInUnion(q, exp) {
		t.Fatal("rewriting should be equivalent here")
	}
	if st.Combinations == 0 || st.Kept == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRewriteEmptyWhenSubgoalUncoverable(t *testing.T) {
	q := mustQ("q(X) :- r(X,Y), secret(Y)")
	vs := viewSet("v(A,B) :- r(A,B)")
	u, st, err := Rewrite(q, vs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 0 {
		t.Fatalf("expected empty rewriting, got %v", u)
	}
	if st.Combinations != 0 {
		t.Fatalf("combinations should not run: %+v", st)
	}
}

func TestRewriteContainedOnly(t *testing.T) {
	// Views are more specific than the query: the MCR is strictly
	// contained.
	q := mustQ("q(X) :- r(X,Y)")
	vs := viewSet("v(A) :- r(A,A)")
	u, _, err := Rewrite(q, vs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 1 {
		t.Fatalf("union = %v", u)
	}
	exp, _ := core.ExpandUnion(u, vs)
	if !containment.UnionContained(exp, q) {
		t.Fatal("unsound rewriting")
	}
	if containment.ContainedInUnion(q, exp) {
		t.Fatal("rewriting cannot be equivalent")
	}
}

func TestRewriteDiscardsBadCombinations(t *testing.T) {
	// v1 covers r but hides the join; v2 covers both subgoals correctly.
	q := mustQ("q(X) :- r(X,Z), s(Z)")
	vs := viewSet(
		"v1(A) :- r(A,B)",
		"v2(A) :- r(A,B), s(B)",
	)
	u, _, err := Rewrite(q, vs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// v1 alone cannot join to s correctly; only combinations through v2
	// survive the containment check.
	for _, m := range u.Queries {
		exp, _ := core.ExpandUnion(cq.NewUnion(m), vs)
		if !containment.UnionContained(exp, q) {
			t.Fatalf("unsound member %v", m)
		}
	}
	if u.Len() == 0 {
		t.Fatal("v2-based rewriting missed")
	}
}

func TestRewriteMaxCombinations(t *testing.T) {
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	vs := viewSet(
		"v1(A,B) :- r(A,B)", "v2(A,B) :- r(A,B), t(A)",
		"w1(A,B) :- s(A,B)", "w2(A,B) :- s(A,B), t(A)",
	)
	_, st, err := Rewrite(q, vs, Options{MaxCombinations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Combinations > 3 {
		t.Fatalf("MaxCombinations ignored: %+v", st)
	}
}

func TestRewriteWithComparisons(t *testing.T) {
	q := mustQ("q(X) :- r(X,Y), X > 3")
	vs := viewSet("v(A,B) :- r(A,B)")
	u, _, err := Rewrite(q, vs, Options{KeepComparisons: true})
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() == 0 {
		t.Fatal("no rewriting with re-asserted comparison")
	}
	if len(u.Queries[0].Comparisons) != 1 {
		t.Fatalf("comparison lost: %v", u.Queries[0])
	}
}

func TestRewriteInvalidQuery(t *testing.T) {
	bad := &cq.Query{Head: cq.NewAtom("q", cq.Var("X"))}
	if _, _, err := Rewrite(bad, viewSet("v(A) :- r(A)"), Options{}); err == nil {
		t.Fatal("invalid query accepted")
	}
}

// End-to-end: evaluating the bucket rewriting over view extents returns a
// subset of the direct answers (soundness on data).
func TestRewriteEvaluationSoundness(t *testing.T) {
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "m"})
	base.Insert("r", storage.Tuple{"b", "n"})
	base.Insert("s", storage.Tuple{"m", "x"})
	base.Insert("s", storage.Tuple{"n", "y"})
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	views := []*cq.Query{mustQ("v1(A,B) :- r(A,B)"), mustQ("v2(A,B) :- s(A,B)")}
	vs := core.MustNewViewSet(views...)

	u, _, err := Rewrite(q, vs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	viewDB, err := datalog.MaterializeViews(base, views)
	if err != nil {
		t.Fatal(err)
	}
	got := datalog.EvalUnion(viewDB, u)
	want := datalog.EvalQuery(base, q)
	if !storage.TuplesEqual(got, want) {
		t.Fatalf("rewriting answers %v, direct %v", got, want)
	}
}
