// Package bucket implements the Bucket algorithm for rewriting conjunctive
// queries using views (Levy, Rajaraman, Ordille — the Information Manifold
// rewriting procedure), producing a maximally-contained rewriting as a
// union of conjunctive queries.
//
// For every query subgoal the algorithm collects a bucket of view atoms
// whose definitions can cover that subgoal; candidates are drawn from the
// cartesian product of the buckets and kept when their unfolding is
// contained in the query. The cartesian product is the algorithm's known
// weakness — buckets ignore how a view interacts with the rest of the query
// — and is exactly what the MiniCon comparison experiments (F1–F3) measure.
package bucket

import (
	"fmt"

	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/cq"
)

// Entry is one bucket element: a view atom that can cover the bucket's
// subgoal, together with provenance.
type Entry struct {
	// View is the original view definition.
	View *cq.Query
	// Atom is the rewriting subgoal: the view head under the unifier,
	// with unbound distinguished variables freshened.
	Atom cq.Atom
	// ViewAtomIndex is the index of the view body atom unified with the
	// query subgoal.
	ViewAtomIndex int
}

// Stats reports the work done by one run.
type Stats struct {
	BucketSizes      []int
	Combinations     int // candidates drawn from the cartesian product
	ContainmentTests int
	Kept             int
}

// Options configures the algorithm.
type Options struct {
	// MaxCombinations aborts the cartesian-product enumeration after this
	// many candidates (0 = unlimited). The F1–F3 experiments use it to
	// keep the known exponential blow-up bounded.
	MaxCombinations int
	// SkipMinimizeUnion returns the raw union without subsumption pruning.
	SkipMinimizeUnion bool
	// KeepComparisons attaches the query's comparisons to candidates when
	// all their terms are exposed.
	KeepComparisons bool
}

// Rewrite runs the Bucket algorithm and returns the maximally-contained
// rewriting of q using the views, as a union of conjunctive queries over
// view predicates, plus run statistics.
func Rewrite(q *cq.Query, vs *core.ViewSet, opt Options) (*cq.Union, Stats, error) {
	var st Stats
	if err := q.Validate(); err != nil {
		return nil, st, err
	}
	buckets := Buckets(q, vs)
	st.BucketSizes = make([]int, len(buckets))
	for i, b := range buckets {
		st.BucketSizes[i] = len(b)
		if len(b) == 0 {
			// A subgoal no view can cover: the MCR is empty.
			return &cq.Union{}, st, nil
		}
	}

	result := &cq.Union{}
	tried := make(map[string]bool) // raw candidates already processed
	seen := make(map[string]bool)  // members already in the result
	choice := make([]int, len(buckets))
	for {
		st.Combinations++
		if opt.MaxCombinations > 0 && st.Combinations > opt.MaxCombinations {
			break
		}
		cand := buildCandidate(q, buckets, choice, opt)
		if cand != nil {
			key := cand.CanonicalString()
			if !tried[key] {
				tried[key] = true
				for _, kept := range tightenAndCheck(q, cand, vs, &st) {
					kkey := kept.CanonicalString()
					if !seen[kkey] {
						seen[kkey] = true
						result.Add(kept)
						st.Kept++
					}
				}
			}
		}
		// Advance the odometer.
		i := 0
		for ; i < len(choice); i++ {
			choice[i]++
			if choice[i] < len(buckets[i]) {
				break
			}
			choice[i] = 0
		}
		if i == len(choice) {
			break
		}
	}
	if !opt.SkipMinimizeUnion {
		result = containment.MinimizeUnion(result)
	}
	return result, st, nil
}

// tightenMappingCap bounds how many unification guides are tried per
// candidate.
const tightenMappingCap = 4

// tightenAndCheck implements the Bucket algorithm's containment step: a raw
// cartesian-product candidate is usually not contained as-is because
// entries from multi-atom views carry fresh variables that should be
// equated with query variables. Following the original algorithm, the
// candidate "can be made contained by equating variables": homomorphisms
// from the candidate's unfolding onto the query (head fixed) propose the
// equations; each tightened candidate is verified exactly.
func tightenAndCheck(q, cand *cq.Query, vs *core.ViewSet, st *Stats) []*cq.Query {
	exp, err := core.Expand(cand, vs)
	if err != nil {
		return nil
	}
	// Fast path: the raw candidate is already contained.
	st.ContainmentTests++
	if containment.Contained(exp, q) {
		return []*cq.Query{cand}
	}
	candVars := make(map[string]bool)
	for _, v := range cand.Vars() {
		candVars[v.Lex] = true
	}
	var kept []*cq.Query
	tried := 0
	containment.FindAllMappings(exp, q, func(h containment.Mapping) bool {
		tried++
		sigma := cq.NewSubst()
		for name, img := range h {
			if candVars[name] {
				sigma[name] = img
			}
		}
		tight := sigma.ApplyQuery(cand)
		if tight.Validate() == nil {
			texp, err := core.Expand(tight, vs)
			if err == nil {
				st.ContainmentTests++
				if containment.Contained(texp, q) {
					kept = append(kept, tight)
				}
			}
		}
		return tried < tightenMappingCap
	})
	return kept
}

// Buckets builds, for every subgoal of q, the bucket of view atoms that can
// cover it.
func Buckets(q *cq.Query, vs *core.ViewSet) [][]Entry {
	headVars := make(map[string]bool)
	for _, t := range q.Head.Args {
		if t.IsVar() {
			headVars[t.Lex] = true
		}
	}
	buckets := make([][]Entry, len(q.Body))
	for gi, g := range q.Body {
		var bucket []Entry
		dedup := make(map[string]bool)
		for _, v := range vs.Views() {
			for ai := range v.Body {
				atom, ok := tryCover(q, g, v, ai, headVars, gi)
				if !ok {
					continue
				}
				key := atom.String()
				if dedup[key] {
					continue
				}
				dedup[key] = true
				bucket = append(bucket, Entry{View: v, Atom: atom, ViewAtomIndex: ai})
			}
		}
		buckets[gi] = bucket
	}
	return buckets
}

// tryCover attempts to unify query subgoal g with the ai-th body atom of
// view v and, if the bucket conditions hold, returns the rewriting subgoal.
//
// Bucket conditions: a query head variable in g must land on a distinguished
// variable of the view (otherwise the rewriting could not output it), and a
// constant in g must land on a distinguished variable or the same constant
// (an existential would lose the filter).
func tryCover(q *cq.Query, g cq.Atom, v *cq.Query, ai int, headVars map[string]bool, gi int) (cq.Atom, bool) {
	fresh := cq.NewFreshener(fmt.Sprintf("B%d_", gi))
	fresh.Reserve(q)
	rv, _ := fresh.RenameApart(v)
	a := rv.Body[ai]
	if a.Pred != g.Pred || len(a.Args) != len(g.Args) {
		return cq.Atom{}, false
	}
	distinguished := make(map[string]bool)
	for _, t := range rv.Head.Args {
		if t.IsVar() {
			distinguished[t.Lex] = true
		}
	}
	isViewVar := make(map[string]bool)
	for _, t := range rv.Vars() {
		isViewVar[t.Lex] = true
	}

	// Unification binds the most replaceable variable: view variables
	// first (the subgoal is rendered over query terms), then query
	// existentials; query head variables are kept free whenever possible
	// so the candidate stays safe.
	theta := cq.NewSubst()
	rank := func(t cq.Term) int {
		switch {
		case t.IsConst():
			return 3
		case isViewVar[t.Lex]:
			return 0
		case headVars[t.Lex]:
			return 2
		default:
			return 1
		}
	}
	unify := func(u, w cq.Term) bool {
		u, w = theta.Walk(u), theta.Walk(w)
		if u == w {
			return true
		}
		if rank(u) > rank(w) {
			u, w = w, u
		}
		if u.IsConst() {
			return false // two distinct constants
		}
		theta[u.Lex] = w
		return true
	}
	for i := range g.Args {
		if !unify(a.Args[i], g.Args[i]) {
			return cq.Atom{}, false
		}
	}
	resolved := theta.Resolved()

	// Bucket conditions are checked position-wise against the view's
	// original terms: an existential view variable enforces nothing in the
	// rewriting, so it may cover neither a query constant nor a query head
	// variable; a view constant cannot produce a query head variable.
	for i := range g.Args {
		qt, vt := g.Args[i], a.Args[i]
		vtExistential := vt.IsVar() && !distinguished[vt.Lex]
		switch {
		case qt.IsConst() && vtExistential:
			return cq.Atom{}, false
		case qt.IsVar() && headVars[qt.Lex] && (vt.IsConst() || vtExistential):
			return cq.Atom{}, false
		}
	}

	// Build the rewriting subgoal: the view head under the unifier. View
	// variables that stayed unbound keep their fresh names (they act as
	// fresh variables of the candidate).
	atom := resolved.ApplyAtom(cq.Atom{Pred: rv.Name(), Args: rv.Head.Args})
	return atom, true
}

func buildCandidate(q *cq.Query, buckets [][]Entry, choice []int, opt Options) *cq.Query {
	body := make([]cq.Atom, 0, len(choice))
	seen := make(map[string]bool)
	for i, c := range choice {
		a := buckets[i][c].Atom
		k := a.Key()
		if !seen[k] {
			seen[k] = true
			body = append(body, a)
		}
	}
	cand := &cq.Query{Head: q.Head, Body: body}
	if opt.KeepComparisons {
		exposed := make(map[cq.Term]bool)
		for _, a := range body {
			for _, t := range a.Args {
				exposed[t] = true
			}
		}
		for _, c := range q.Comparisons {
			if (c.Left.IsConst() || exposed[c.Left]) && (c.Right.IsConst() || exposed[c.Right]) {
				cand.Comparisons = append(cand.Comparisons, c)
			}
		}
	}
	if cand.Validate() != nil {
		return nil
	}
	return cand
}
