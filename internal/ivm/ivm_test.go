package ivm

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/storage"
	"repro/internal/workload"
)

func testViews(t *testing.T) (*storage.Database, []*cq.Query) {
	t.Helper()
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "m"})
	base.Insert("r", storage.Tuple{"b", "n"})
	base.Insert("s", storage.Tuple{"m", "x"})
	views, err := cq.ParseViews(`
		v(A,B)  :- r(A,C), s(C,B).
		vr(A,B) :- r(A,B).
		big(A,B) :- s(A,B), B > 5.
	`)
	if err != nil {
		t.Fatal(err)
	}
	return base, views
}

func TestMaintainerBasics(t *testing.T) {
	base, views := testViews(t)
	m, err := New(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsView("v") || m.IsView("r") {
		t.Fatal("IsView wrong")
	}
	if got := m.Database().Relation("v").Len(); got != 1 {
		t.Fatalf("initial v extent = %d, want 1", got)
	}
	// Non-numeric values compare lexicographically: "x" > "5" holds.
	if got := m.Database().Relation("big").Len(); got != 1 {
		t.Fatalf("initial big extent = %d, want 1", got)
	}

	res, err := m.ApplyBatch(map[string][]storage.Tuple{
		"s": {{"n", "9"}, {"m", "x"}}, // one new join partner, one duplicate
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BaseInserted["s"]) != 1 {
		t.Fatalf("BaseInserted = %v, want one new s tuple", res.BaseInserted)
	}
	// s(n,9) joins r(b,n) into v, and 9 > 5 enters big.
	if len(res.ExtentDelta["v"]) != 1 || len(res.ExtentDelta["big"]) != 1 {
		t.Fatalf("ExtentDelta = %v, want one v and one big tuple", res.ExtentDelta)
	}
	if !m.Database().Relation("v").Contains(storage.Tuple{"b", "9"}) {
		t.Fatal("v extent missing maintained tuple")
	}
	if !m.Database().Relation("v").Frozen() {
		t.Fatal("extent lost its indexes across maintenance")
	}

	// Inserting into a view predicate is rejected and mutates nothing.
	if _, err := m.ApplyBatch(map[string][]storage.Tuple{"v": {{"z", "z"}}}); err == nil {
		t.Fatal("insert into view extent accepted")
	}

	st := m.Stats()
	if st.Batches != 1 || st.BaseInserted != 1 || st.ExtentDerived != 2 || st.Rounds == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaintainTime <= 0 {
		t.Fatalf("MaintainTime = %v", st.MaintainTime)
	}
}

func TestMaintainerEmptyViewSet(t *testing.T) {
	if _, err := New(storage.NewDatabase(), nil, Options{}); err == nil {
		t.Fatal("empty view set accepted")
	}
}

// TestMaintainerDifferential drives random update streams over random view
// sets and checks every extent against a full MaterializeViews of the
// accumulated base after each batch.
func TestMaintainerDifferential(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 40
	}
	rng := rand.New(rand.NewSource(0xBEEF))
	preds := []string{"p1", "p2", "p3"}
	for trial := 0; trial < trials; trial++ {
		base := workload.RandomDatabase(rng, preds, 2, 5+rng.Intn(40), 4+rng.Intn(12))
		q := workload.RandomQuery(rng, 2+rng.Intn(3), len(preds), 0.5)
		views := workload.RandomViewsForQuery(rng, q, workload.ViewSpec{
			Count: 1 + rng.Intn(4), MinLen: 1, MaxLen: 3, ExposeProb: 0.6,
		})
		m, err := New(base, views, Options{Workers: 1 + rng.Intn(3)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		shadow := base.Clone()
		for batch := 0; batch < 1+rng.Intn(3); batch++ {
			upd := make(map[string][]storage.Tuple)
			for i := 0; i < 1+rng.Intn(5); i++ {
				p := preds[rng.Intn(len(preds))]
				tup := storage.Tuple{
					fmt.Sprintf("c%d", rng.Intn(16)),
					fmt.Sprintf("c%d", rng.Intn(16)),
				}
				upd[p] = append(upd[p], tup)
				shadow.Insert(p, tup)
			}
			if _, err := m.ApplyBatch(upd); err != nil {
				t.Fatalf("trial %d batch %d: %v", trial, batch, err)
			}
			want, err := datalog.MaterializeViews(shadow, views)
			if err != nil {
				t.Fatalf("trial %d batch %d: rematerialize: %v", trial, batch, err)
			}
			for _, v := range views {
				got := m.Database().Relation(v.Name()).Tuples()
				if !storage.TuplesEqual(got, want.Relation(v.Name()).Tuples()) {
					t.Fatalf("trial %d batch %d: extent %s diverges\n  incremental: %v\n  full:        %v\n  view: %s",
						trial, batch, v.Name(), got, want.Relation(v.Name()).Tuples(), v)
				}
			}
			// Base relations track the shadow exactly.
			for _, p := range preds {
				if !storage.TuplesEqual(m.Database().Relation(p).Tuples(), shadow.Relation(p).Tuples()) {
					t.Fatalf("trial %d batch %d: base %s diverges", trial, batch, p)
				}
			}
		}
	}
}
