package ivm

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/storage"
	"repro/internal/workload"
)

func TestMaintainerApplyUpdateBasics(t *testing.T) {
	base, views := testViews(t)
	m, err := New(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Delete r(a,m): v(a,x) loses its only derivation, vr(a,m) too.
	res, err := m.ApplyUpdate(nil, map[string][]storage.Tuple{"r": {{"a", "m"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BaseDeleted["r"]) != 1 {
		t.Fatalf("BaseDeleted = %v", res.BaseDeleted)
	}
	if len(res.ExtentRetracted["v"]) != 1 || len(res.ExtentRetracted["vr"]) != 1 {
		t.Fatalf("ExtentRetracted = %v, want one v and one vr tuple", res.ExtentRetracted)
	}
	if m.Database().Relation("v").Contains(storage.Tuple{"a", "x"}) {
		t.Fatal("retracted extent tuple survives")
	}
	if !m.Database().Relation("v").Frozen() {
		t.Fatal("extent lost its indexes across a retraction")
	}

	// Mixed batch: re-insert r(a,m) and delete s(m,x) — v(a,x) must not
	// come back (its join partner is gone) but vr(a,m) must.
	res, err = m.ApplyUpdate(
		map[string][]storage.Tuple{"r": {{"a", "m"}}},
		map[string][]storage.Tuple{"s": {{"m", "x"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.Database().Relation("v").Contains(storage.Tuple{"a", "x"}) {
		t.Fatal("v(a,x) re-derived without its join partner")
	}
	if !m.Database().Relation("vr").Contains(storage.Tuple{"a", "m"}) {
		t.Fatalf("vr(a,m) not re-derived by the insert side: %+v", res)
	}

	// Deleting a view extent is rejected and mutates nothing.
	if _, err := m.ApplyUpdate(nil, map[string][]storage.Tuple{"v": {{"z", "z"}}}); err == nil {
		t.Fatal("delete from view extent accepted")
	}

	st := m.Stats()
	if st.Batches != 2 || st.BaseDeleted != 2 || st.ExtentRetracted < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestMaintainerUpdateDifferential drives random mixed insert/delete
// streams over random view sets, across worker counts and shard counts,
// and checks every extent against a full re-materialization of the
// surviving base after each batch. When sharded, the partitioned mirror
// must stay tuple-identical to the flat database.
func TestMaintainerUpdateDifferential(t *testing.T) {
	trials := 120
	if testing.Short() {
		trials = 30
	}
	rng := rand.New(rand.NewSource(0xD_E1E7))
	preds := []string{"p1", "p2", "p3"}
	for trial := 0; trial < trials; trial++ {
		base := workload.RandomDatabase(rng, preds, 2, 5+rng.Intn(40), 4+rng.Intn(12))
		q := workload.RandomQuery(rng, 2+rng.Intn(3), len(preds), 0.5)
		views := workload.RandomViewsForQuery(rng, q, workload.ViewSpec{
			Count: 1 + rng.Intn(4), MinLen: 1, MaxLen: 3, ExposeProb: 0.6,
		})
		shards := 0
		if rng.Intn(2) == 0 {
			shards = 2 + rng.Intn(3)
		}
		m, err := New(base, views, Options{Workers: 1 + rng.Intn(3), Shards: shards})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		shadow := base.Clone()
		for batch := 0; batch < 2+rng.Intn(3); batch++ {
			ins := make(map[string][]storage.Tuple)
			del := make(map[string][]storage.Tuple)
			if batch > 0 || rng.Intn(2) == 0 { // sometimes an insert-only first batch
				for _, p := range preds {
					rel := shadow.Relation(p)
					if rel == nil || rel.Len() == 0 || rng.Intn(3) == 0 {
						continue
					}
					tuples := rel.Tuples()
					for i := 0; i < 1+rng.Intn(3); i++ {
						del[p] = append(del[p], tuples[rng.Intn(len(tuples))])
					}
				}
			}
			for i := 0; i < rng.Intn(5); i++ {
				p := preds[rng.Intn(len(preds))]
				ins[p] = append(ins[p], storage.Tuple{
					fmt.Sprintf("c%d", rng.Intn(16)),
					fmt.Sprintf("c%d", rng.Intn(16)),
				})
			}
			if _, err := m.ApplyUpdate(ins, del); err != nil {
				t.Fatalf("trial %d batch %d: %v", trial, batch, err)
			}
			for p, tuples := range del {
				for _, tup := range tuples {
					shadow.Remove(p, tup)
				}
			}
			for p, tuples := range ins {
				for _, tup := range tuples {
					shadow.Insert(p, tup)
				}
			}
			want, err := datalog.MaterializeViews(shadow, views)
			if err != nil {
				t.Fatalf("trial %d batch %d: rematerialize: %v", trial, batch, err)
			}
			for _, v := range views {
				got := m.Database().Relation(v.Name()).Tuples()
				if !storage.TuplesEqual(got, want.Relation(v.Name()).Tuples()) {
					t.Fatalf("trial %d batch %d (shards=%d): extent %s diverges\n  incremental: %v\n  full:        %v\n  view: %s",
						trial, batch, shards, v.Name(), got, want.Relation(v.Name()).Tuples(), v)
				}
			}
			for _, p := range preds {
				if !storage.TuplesEqual(m.Database().Relation(p).Tuples(), shadow.Relation(p).Tuples()) {
					t.Fatalf("trial %d batch %d: base %s diverges", trial, batch, p)
				}
			}
			if pdb := m.Partitioned(); pdb != nil {
				flat := pdb.Flatten()
				for _, pred := range m.Database().Predicates() {
					var mirror []storage.Tuple
					if r := flat.Relation(pred); r != nil {
						mirror = r.Tuples()
					}
					if !storage.TuplesEqual(mirror, m.Database().Relation(pred).Tuples()) {
						t.Fatalf("trial %d batch %d: mirror diverges on %s\n  mirror: %v\n  flat:   %v",
							trial, batch, pred, mirror, m.Database().Relation(pred).Tuples())
					}
				}
			}
		}
	}
}
