package ivm

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/storage"
	"repro/internal/workload"
)

// TestMaintainerSharded: a sharded maintainer (per-shard delta propagation
// on the partitioned mirror) must report the same batch results and keep
// both its representations — the flat database and the partitioned twin —
// tuple-identical to a flat maintainer fed the same stream.
func TestMaintainerSharded(t *testing.T) {
	streams := 25
	if testing.Short() {
		streams = 8
	}
	rng := rand.New(rand.NewSource(0x5D1))
	const chainLen = 3
	for stream := 0; stream < streams; stream++ {
		base := workload.ChainDatabase(rng, chainLen, true, 20+rng.Intn(40), 20)
		views := workload.ChainViews(rng, chainLen, true, workload.DefaultViewSpec(2+rng.Intn(3)))
		flat, err := New(base, views, Options{})
		if err != nil {
			t.Fatalf("stream %d: flat: %v", stream, err)
		}
		shards := 2 + rng.Intn(5)
		sharded, err := New(base, views, Options{Shards: shards, Workers: 1 + rng.Intn(3)})
		if err != nil {
			t.Fatalf("stream %d: sharded: %v", stream, err)
		}
		if sharded.Partitioned() == nil || sharded.Partitioned().NumShards() != shards {
			t.Fatalf("stream %d: Partitioned() missing or wrong shard count", stream)
		}
		if flat.Partitioned() != nil {
			t.Fatalf("stream %d: flat maintainer grew a partitioned twin", stream)
		}
		for batch := 0; batch < 1+rng.Intn(4); batch++ {
			upd := make(map[string][]storage.Tuple)
			for i := 0; i < 1+rng.Intn(6); i++ {
				pred := fmt.Sprintf("p%d", 1+rng.Intn(chainLen))
				upd[pred] = append(upd[pred], storage.Tuple{
					fmt.Sprintf("c%d", rng.Intn(20)), fmt.Sprintf("c%d", rng.Intn(20))})
			}
			fres, err := flat.ApplyBatch(upd)
			if err != nil {
				t.Fatalf("stream %d batch %d: flat: %v", stream, batch, err)
			}
			sres, err := sharded.ApplyBatch(upd)
			if err != nil {
				t.Fatalf("stream %d batch %d: sharded: %v", stream, batch, err)
			}
			for pred := range fres.BaseInserted {
				if len(sres.BaseInserted[pred]) != len(fres.BaseInserted[pred]) {
					t.Fatalf("stream %d batch %d: fresh %s: sharded %d, flat %d",
						stream, batch, pred, len(sres.BaseInserted[pred]), len(fres.BaseInserted[pred]))
				}
			}
			for pred := range fres.ExtentDelta {
				if !storage.TuplesEqual(
					storage.SortTuples(append([]storage.Tuple(nil), sres.ExtentDelta[pred]...)),
					storage.SortTuples(append([]storage.Tuple(nil), fres.ExtentDelta[pred]...))) {
					t.Fatalf("stream %d batch %d: extent delta %s diverges", stream, batch, pred)
				}
			}
			// Flat db, partitioned twin and the reference maintainer must
			// all hold the same tuples after the batch.
			want := flat.Database()
			for _, cand := range []*storage.Database{sharded.Database(), sharded.Partitioned().Flatten()} {
				for _, pred := range want.Predicates() {
					cr := cand.Relation(pred)
					if cr == nil || !storage.TuplesEqual(cr.Tuples(), want.Relation(pred).Tuples()) {
						t.Fatalf("stream %d batch %d: predicate %s diverges from flat maintainer", stream, batch, pred)
					}
				}
			}
		}
	}
}
