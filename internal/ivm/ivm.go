// Package ivm incrementally maintains materialized view extents under
// base-fact inserts, deletions, and mixed update batches. A Maintainer
// owns a private database holding the base relations and every view
// extent; each view definition is compiled once into per-EDB-occurrence
// delta plans (datalog.CompileProgramIVM), and an update batch runs one
// semi-naive propagation round per affected occurrence instead of
// re-materializing any extent — work is proportional to the consequences
// of the batch, not to the size of the database.
//
// Inserts propagate monotonically. Deletions are non-monotone and take the
// datalog counting/DRed machinery (ApplyUpdates): view sets are flat, so
// the compiled program tracks exact per-derived-tuple derivation counts —
// built lazily on the first deletion — and retracts an extent tuple
// exactly when its count reaches zero. Batches mixing deletions and
// insertions apply deletions first and are atomic either way.
//
// The Maintainer is the engine's mutation path: Engine.InsertBatch and
// Engine.DeleteBatch apply a batch here, then forward the returned base
// and extent deltas to the serving snapshots. It is equally usable
// standalone for applications that keep extents fresh without the serving
// layer.
//
// A Maintainer is single-writer: calls to ApplyBatch must be serialized by
// the caller (the engine holds an update mutex). Reads of the maintained
// database may not overlap an ApplyBatch call.
package ivm

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/storage"
)

// Options configures a Maintainer.
type Options struct {
	// Workers fans each propagation round's delta-plan executions across
	// goroutines; 0 or 1 propagates sequentially.
	Workers int
	// Shards hash-partitions the maintained database into this many shards
	// and runs every propagation round per-shard (datalog.ApplyInsertsSharded):
	// each task joins one shard's slice of the delta, probes on partition
	// columns stay shard-local, and new derivations are routed to their
	// owner shards at round barriers. 0 or 1 maintains the flat database
	// directly. The flat database (Database) remains the source of truth
	// for reads either way.
	Shards int
}

// Maintainer delta-maintains the extents of a view set over a base
// database.
type Maintainer struct {
	views     []*cq.Query
	viewNames map[string]bool
	cp        *datalog.CompiledProgram
	st        *datalog.MaintState
	db        *storage.Database // base relations + maintained extents
	pdb       *storage.PartitionedDatabase // hash-partitioned twin of db when Options.Shards > 1
	opt       Options

	batches       uint64
	baseInserted  uint64
	baseDeleted   uint64
	derived       uint64
	retracted     uint64
	rounds        uint64
	maintainTime  time.Duration
}

// BatchResult reports one applied update batch.
type BatchResult struct {
	// BaseInserted maps each base predicate to the tuples that were
	// actually new; duplicates of existing facts are dropped.
	BaseInserted map[string][]storage.Tuple
	// BaseDeleted maps each base predicate to the tuples that were
	// actually present and removed; deletions of absent facts are dropped.
	BaseDeleted map[string][]storage.Tuple
	// ExtentDelta maps each view to the extent tuples the propagation
	// derived.
	ExtentDelta map[string][]storage.Tuple
	// ExtentRetracted maps each view to the extent tuples the batch's
	// deletions retracted (their last derivation is gone). A mixed batch
	// must be replayed retractions-first: an insert in the same batch may
	// re-derive a retracted tuple, in which case it also appears in
	// ExtentDelta.
	ExtentRetracted map[string][]storage.Tuple
	// Stats reports the propagation rounds and derived-tuple count.
	Stats datalog.FixpointStats
	// Duration is the wall time of the batch: inserts plus propagation.
	Duration time.Duration
}

// Stats aggregates a Maintainer's lifetime work.
type Stats struct {
	// Batches is the number of ApplyBatch/ApplyUpdate calls that succeeded.
	Batches uint64
	// BaseInserted counts base tuples that were new across all batches.
	BaseInserted uint64
	// BaseDeleted counts base tuples removed across all batches.
	BaseDeleted uint64
	// ExtentDerived counts extent tuples derived across all batches.
	ExtentDerived uint64
	// ExtentRetracted counts extent tuples retracted across all batches.
	ExtentRetracted uint64
	// Rounds counts propagation rounds across all batches.
	Rounds uint64
	// MaintainTime is the cumulative wall time spent applying batches.
	MaintainTime time.Duration
}

// New builds a Maintainer: it materializes every view over base once (the
// last full evaluation the system ever pays for these views) and freezes
// the result for indexed delta propagation. base is not retained or
// mutated.
func New(base *storage.Database, views []*cq.Query, opt Options) (*Maintainer, error) {
	if len(views) == 0 {
		return nil, fmt.Errorf("ivm: empty view set")
	}
	prog := &datalog.Program{}
	names := make(map[string]bool, len(views))
	for _, v := range views {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("ivm: view %s: %w", v.Name(), err)
		}
		names[v.Name()] = true
		prog.Rules = append(prog.Rules, datalog.RuleFromQuery(v))
	}
	if base == nil {
		base = storage.NewDatabase()
	}
	cp, err := datalog.CompileProgramIVM(prog, cost.NewCatalog(base))
	if err != nil {
		return nil, fmt.Errorf("ivm: %w", err)
	}
	// Deletion state must see the pre-materialization base: view-named
	// facts present there are baseline and survive every retraction.
	st := cp.NewMaintState(base)
	db, err := cp.Eval(base)
	if err != nil {
		return nil, fmt.Errorf("ivm: materialize: %w", err)
	}
	db.BuildIndexes()
	m := &Maintainer{views: views, viewNames: names, cp: cp, st: st, db: db, opt: opt}
	if opt.Shards > 1 {
		// Partition the materialized state (base + extents) under the
		// catalog's probe-column policy; the mirror is the propagation
		// state from here on, the flat db is kept in sync by inserts.
		m.pdb = storage.Partition(db, opt.Shards, cost.NewCatalog(db).PartitionColumns(nil))
		m.pdb.BuildIndexes()
	}
	return m, nil
}

// NewFromMaterialized rebuilds a Maintainer around an already-materialized
// database — base relations plus every view extent, as recovered from a
// durable snapshot — skipping the full evaluation New pays. baseline is
// the deletion baseline exported by BaselineKeys on the maintainer that
// produced db (nil when no view-named base facts existed). db is adopted
// as the maintenance state: the caller must not mutate it afterwards.
func NewFromMaterialized(db *storage.Database, views []*cq.Query, baseline map[string][]string, opt Options) (*Maintainer, error) {
	if len(views) == 0 {
		return nil, fmt.Errorf("ivm: empty view set")
	}
	prog := &datalog.Program{}
	names := make(map[string]bool, len(views))
	for _, v := range views {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("ivm: view %s: %w", v.Name(), err)
		}
		names[v.Name()] = true
		prog.Rules = append(prog.Rules, datalog.RuleFromQuery(v))
	}
	if db == nil {
		db = storage.NewDatabase()
	}
	// An extent that materialized empty may be absent from the snapshot
	// reader's database; the maintainer needs the relation to exist so
	// delta propagation has somewhere to land.
	for _, v := range views {
		if db.Relation(v.Name()) == nil {
			if _, err := db.Ensure(v.Name(), v.Arity()); err != nil {
				return nil, fmt.Errorf("ivm: %w", err)
			}
		}
	}
	cp, err := datalog.CompileProgramIVM(prog, cost.NewCatalog(db))
	if err != nil {
		return nil, fmt.Errorf("ivm: %w", err)
	}
	db.BuildIndexes()
	m := &Maintainer{views: views, viewNames: names, cp: cp, st: cp.RestoreMaintState(baseline), db: db, opt: opt}
	if opt.Shards > 1 {
		m.pdb = storage.Partition(db, opt.Shards, cost.NewCatalog(db).PartitionColumns(nil))
		m.pdb.BuildIndexes()
	}
	return m, nil
}

// BaselineKeys exports the maintainer's deletion baseline for persistence;
// feed it back to NewFromMaterialized when rebuilding from a snapshot of
// Database().
func (m *Maintainer) BaselineKeys() map[string][]string { return m.st.BaselineKeys() }

// Views returns the maintained view definitions.
func (m *Maintainer) Views() []*cq.Query { return m.views }

// IsView reports whether pred names a maintained view extent.
func (m *Maintainer) IsView(pred string) bool { return m.viewNames[pred] }

// Database returns the maintained database: base relations plus every view
// extent, frozen, with indexes maintained across batches. It is the live
// maintenance state — callers must not mutate it, and must not read it
// concurrently with ApplyBatch.
func (m *Maintainer) Database() *storage.Database { return m.db }

// Partitioned returns the hash-partitioned twin of the maintained database,
// or nil when Options.Shards <= 1. When present it holds exactly the same
// tuples as Database (both are updated by every batch) and carries the same
// read/mutation restrictions.
func (m *Maintainer) Partitioned() *storage.PartitionedDatabase { return m.pdb }

// ApplyBatch inserts base facts — across any number of predicates — and
// delta-maintains every extent. Inserts into view predicates are rejected,
// and the batch is validated before anything is mutated. Tuples already
// present count as duplicates and propagate nothing.
func (m *Maintainer) ApplyBatch(updates map[string][]storage.Tuple) (*BatchResult, error) {
	return m.ApplyBatchCtx(context.Background(), updates, datalog.Limits{})
}

// ApplyUpdate applies a mixed batch: deletes are removed (and their extent
// consequences retracted) first, then inserts propagate as in ApplyBatch.
// The batch is atomic — on any error both representations are exactly
// their pre-batch state. Deleting absent tuples is a no-op; view
// predicates are rejected on both sides.
func (m *Maintainer) ApplyUpdate(inserts, deletes map[string][]storage.Tuple) (*BatchResult, error) {
	return m.ApplyUpdateCtx(context.Background(), inserts, deletes, datalog.Limits{})
}

// undoLog records every relation's pre-batch tuple count (per shard for the
// partitioned mirror). It backs the monotone insert path only: those
// batches never remove tuples, so truncating each relation back to its
// recorded length — and dropping relations the batch created — restores
// the exact pre-batch state. Deletion batches are instead journaled inside
// datalog.ApplyUpdates, which removes before it appends.
type undoLog struct {
	flat map[string]int
	part map[string][]int
}

// snapshot captures the pre-batch sizes of both representations. O(number
// of relations), no tuple copying.
func (m *Maintainer) snapshot() undoLog {
	u := undoLog{flat: make(map[string]int)}
	for _, pred := range m.db.Predicates() {
		u.flat[pred] = m.db.Relation(pred).Len()
	}
	if m.pdb != nil {
		u.part = make(map[string][]int)
		for _, pred := range m.pdb.Predicates() {
			pr := m.pdb.Relation(pred)
			ns := make([]int, pr.NumShards())
			for i := range ns {
				ns[i] = pr.Shard(i).Len()
			}
			u.part[pred] = ns
		}
	}
	return u
}

// restore rolls both representations back to the undo log: relations the
// batch created are dropped, the rest are truncated to their pre-batch
// lengths (index postings are unwound with the tuples).
func (m *Maintainer) restore(u undoLog) {
	for _, pred := range m.db.Predicates() {
		n, ok := u.flat[pred]
		if !ok {
			m.db.Drop(pred)
			continue
		}
		m.db.Relation(pred).TruncateTo(n)
	}
	if m.pdb != nil {
		for _, pred := range m.pdb.Predicates() {
			ns, ok := u.part[pred]
			if !ok {
				m.pdb.Drop(pred)
				continue
			}
			pr := m.pdb.Relation(pred)
			for i, n := range ns {
				pr.Shard(i).TruncateTo(n)
			}
		}
	}
}

// ApplyBatchCtx is ApplyBatch under a cancellation context and evaluation
// limits. The batch is atomic: on any error — validation, cancellation
// (datalog.ErrCanceled), or a budget trip (datalog.ErrBudgetExceeded) —
// every partially propagated tuple is rolled back and the maintained
// database is exactly its pre-batch state, so an aborted batch can simply
// be retried. A panic during propagation also rolls back before being
// re-raised to the caller's recover guard.
func (m *Maintainer) ApplyBatchCtx(ctx context.Context, updates map[string][]storage.Tuple, lim datalog.Limits) (*BatchResult, error) {
	return m.ApplyUpdateCtx(ctx, updates, nil, lim)
}

// ApplyUpdateCtx is ApplyUpdate under a cancellation context and evaluation
// limits, with the same atomicity contract as ApplyBatchCtx: cancellation
// or a tripped budget mid-retraction rolls the whole batch back. Insert-only
// batches keep the monotone propagation path (sharded when configured)
// until the first deletion builds the derivation counts; from then on every
// batch flows through the counting path so the counts stay exact.
func (m *Maintainer) ApplyUpdateCtx(ctx context.Context, inserts, deletes map[string][]storage.Tuple, lim datalog.Limits) (*BatchResult, error) {
	start := time.Now()
	hasDeletes := false
	for _, tuples := range deletes {
		if len(tuples) > 0 {
			hasDeletes = true
			break
		}
	}
	var (
		res *BatchResult
		err error
	)
	if hasDeletes || m.st.CountsReady() {
		res, err = m.applyNonMonotone(ctx, inserts, deletes, lim)
	} else {
		res, err = m.applyMonotone(ctx, inserts, lim)
	}
	if err != nil {
		return nil, err
	}
	res.Duration = time.Since(start)
	m.batches++
	for _, tuples := range res.BaseInserted {
		m.baseInserted += uint64(len(tuples))
	}
	for _, tuples := range res.BaseDeleted {
		m.baseDeleted += uint64(len(tuples))
	}
	for _, tuples := range res.ExtentRetracted {
		m.retracted += uint64(len(tuples))
	}
	m.derived += uint64(res.Stats.Derived)
	m.rounds += uint64(res.Stats.Iterations)
	m.maintainTime += res.Duration
	return res, nil
}

// applyMonotone is the insert-only path: sharded propagation on the mirror
// (replaying net effects into the flat database) when configured, flat
// propagation otherwise, with a length-snapshot undo log for atomicity.
func (m *Maintainer) applyMonotone(ctx context.Context, updates map[string][]storage.Tuple, lim datalog.Limits) (res *BatchResult, err error) {
	undo := m.snapshot()
	defer func() {
		if r := recover(); r != nil {
			m.restore(undo)
			panic(r)
		}
		if err != nil {
			m.restore(undo)
		}
	}()
	var (
		fresh, derived map[string][]storage.Tuple
		stats          datalog.FixpointStats
	)
	if m.pdb != nil {
		// Propagate per-shard on the partitioned mirror, then replay the
		// batch's net effect (fresh base facts + derived extent tuples)
		// into the flat database — plain inserts, no second propagation.
		fresh, derived, stats, err = m.cp.ApplyInsertsShardedCtx(ctx, m.pdb, updates, m.opt.Workers, lim)
		if err == nil {
			err = m.replayFlat(fresh, derived)
		}
	} else {
		fresh, derived, stats, err = m.cp.ApplyInsertsCtx(ctx, m.db, updates, m.opt.Workers, lim)
	}
	if err != nil {
		return nil, fmt.Errorf("ivm: %w", err)
	}
	return &BatchResult{BaseInserted: fresh, ExtentDelta: derived, Stats: stats}, nil
}

// applyNonMonotone is the deletion-capable path: the counting update runs
// on the flat database (datalog.ApplyUpdates journals and rolls back
// internally, so no snapshot is needed here), then the batch's net effect
// is replayed into the partitioned mirror — retractions routed to their
// owner shards first, then insertions.
func (m *Maintainer) applyNonMonotone(ctx context.Context, inserts, deletes map[string][]storage.Tuple, lim datalog.Limits) (*BatchResult, error) {
	ures, err := m.cp.ApplyUpdatesCtx(ctx, m.db, m.st, inserts, deletes, m.opt.Workers, lim)
	if err != nil {
		return nil, fmt.Errorf("ivm: %w", err)
	}
	if m.pdb != nil {
		if err := m.replayNet(ures); err != nil {
			// Unreachable unless the mirror diverged from the flat
			// database; the flat update is already committed and correct,
			// so rebuild the mirror from it rather than guess at repairs.
			m.pdb = storage.Partition(m.db, m.opt.Shards, cost.NewCatalog(m.db).PartitionColumns(nil))
			m.pdb.BuildIndexes()
		}
	}
	return &BatchResult{
		BaseInserted:    ures.BaseInserted,
		BaseDeleted:     ures.BaseDeleted,
		ExtentDelta:     ures.Derived,
		ExtentRetracted: ures.Retracted,
		Stats:           ures.Stats,
	}, nil
}

// replayNet mirrors a committed flat update into the partitioned twin:
// removals first (each routed to its owner shard, index postings repaired
// in place), then insertions — the order a mixed batch requires, since an
// insert may re-derive a tuple the delete phase retracted.
func (m *Maintainer) replayNet(ures *datalog.UpdateResult) error {
	for _, batch := range []map[string][]storage.Tuple{ures.BaseDeleted, ures.Retracted} {
		for pred, tuples := range batch {
			pr := m.pdb.Relation(pred)
			if pr == nil {
				continue
			}
			for _, t := range tuples {
				pr.Remove(t)
			}
		}
	}
	for _, batch := range []map[string][]storage.Tuple{ures.BaseInserted, ures.Derived} {
		for pred, tuples := range batch {
			if len(tuples) == 0 {
				continue
			}
			pr, err := m.pdb.Ensure(pred, len(tuples[0]), 0)
			if err != nil {
				return err
			}
			for _, t := range tuples {
				pr.Insert(t)
			}
		}
	}
	return nil
}

// replayFlat inserts a sharded batch's new base and extent tuples into the
// flat database, keeping the two representations tuple-identical. The
// sharded propagation already computed the consequences, so this is pure
// insertion work; frozen relations maintain their indexes incrementally.
func (m *Maintainer) replayFlat(batches ...map[string][]storage.Tuple) error {
	for _, batch := range batches {
		for pred, tuples := range batch {
			if len(tuples) == 0 {
				continue
			}
			rel, err := m.db.Ensure(pred, len(tuples[0]))
			if err != nil {
				return err
			}
			for _, t := range tuples {
				rel.Insert(t)
			}
		}
	}
	return nil
}

// Stats snapshots the maintainer's lifetime counters.
func (m *Maintainer) Stats() Stats {
	return Stats{
		Batches:         m.batches,
		BaseInserted:    m.baseInserted,
		BaseDeleted:     m.baseDeleted,
		ExtentDerived:   m.derived,
		ExtentRetracted: m.retracted,
		Rounds:          m.rounds,
		MaintainTime:    m.maintainTime,
	}
}
