package ivm

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/storage"
)

// dbFingerprint serializes a database's full contents for exact
// before/after comparison.
func dbFingerprint(db *storage.Database) string {
	var b strings.Builder
	for _, pred := range db.Predicates() {
		tuples := append([]storage.Tuple(nil), db.Relation(pred).Tuples()...)
		storage.SortTuples(tuples)
		b.WriteString(pred)
		b.WriteString(":")
		for _, t := range tuples {
			b.WriteString(t.Key())
			b.WriteString(";")
		}
		b.WriteString("\n")
	}
	return b.String()
}

func pdbFingerprint(pdb *storage.PartitionedDatabase) string {
	if pdb == nil {
		return ""
	}
	return dbFingerprint(pdb.Flatten())
}

func maintainerFingerprint(m *Maintainer) (string, string) {
	return dbFingerprint(m.Database()), pdbFingerprint(m.Partitioned())
}

func TestApplyBatchCtxCanceledRollsBack(t *testing.T) {
	for _, shards := range []int{0, 4} {
		base, views := testViews(t)
		m, err := New(base, views, Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		flatBefore, partBefore := maintainerFingerprint(m)

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err = m.ApplyBatchCtx(ctx, map[string][]storage.Tuple{
			"s": {{"n", "9"}},
		}, datalog.Limits{})
		if !errors.Is(err, datalog.ErrCanceled) {
			t.Fatalf("shards=%d: err = %v, want ErrCanceled", shards, err)
		}
		flatAfter, partAfter := maintainerFingerprint(m)
		if flatAfter != flatBefore || partAfter != partBefore {
			t.Fatalf("shards=%d: canceled batch left residue", shards)
		}

		// The same batch retried without the cancel applies cleanly.
		res, err := m.ApplyBatch(map[string][]storage.Tuple{"s": {{"n", "9"}}})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.BaseInserted["s"]) != 1 || len(res.ExtentDelta["v"]) != 1 {
			t.Fatalf("shards=%d: retry result = %+v", shards, res)
		}
	}
}

func TestApplyBatchCtxBudgetRollsBack(t *testing.T) {
	base, views := testViews(t)
	m, err := New(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	flatBefore, _ := maintainerFingerprint(m)

	// MaxRounds 0 is unlimited; 1 round cannot finish even the seed round's
	// consequences here? The seed round itself is round 1, so force failure
	// with a derivation budget of 0 rows... MaxDerived must be >0 to be
	// active, so use MaxRounds: the batch needs two rounds (seed + quiesce
	// check) only when something derives; a 1-round budget trips once the
	// seed round derived tuples and a second round is still needed. If the
	// budget happens not to trip, the test detects it and uses a stricter
	// check below.
	_, err = m.ApplyBatchCtx(context.Background(), map[string][]storage.Tuple{
		"s": {{"n", "9"}, {"q", "8"}, {"z", "7"}},
	}, datalog.Limits{MaxDerived: 1})
	if !errors.Is(err, datalog.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	flatAfter, _ := maintainerFingerprint(m)
	if flatAfter != flatBefore {
		t.Fatal("budget-tripped batch left residue")
	}
}

func TestApplyBatchCtxValidationUnchanged(t *testing.T) {
	base, views := testViews(t)
	m, err := New(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := maintainerFingerprint(m)
	// Inserting into a view predicate is rejected up front.
	if _, err := m.ApplyBatchCtx(context.Background(), map[string][]storage.Tuple{
		"v": {{"a", "b"}},
	}, datalog.Limits{}); err == nil {
		t.Fatal("insert into view predicate should fail")
	}
	// Arity mismatch is a typed error now.
	_, err = m.ApplyBatchCtx(context.Background(), map[string][]storage.Tuple{
		"r": {{"only-one"}},
	}, datalog.Limits{})
	var ae *storage.ArityError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T (%v), want *storage.ArityError", err, err)
	}
	after, _ := maintainerFingerprint(m)
	if after != before {
		t.Fatal("rejected batch mutated the database")
	}
}

// TestApplyBatchCtxRepeatedCancelConverges interleaves canceled and
// successful batches and checks the final state equals applying only the
// successful ones to a fresh maintainer.
func TestApplyBatchCtxRepeatedCancelConverges(t *testing.T) {
	base, views := testViews(t)
	m, err := New(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	batches := []map[string][]storage.Tuple{
		{"s": {{"n", "9"}}},
		{"r": {{"c", "q"}}, "s": {{"q", "zz"}}},
		{"s": {{"m", "7"}}},
		{"r": {{"d", "z"}}},
	}
	var applied []map[string][]storage.Tuple
	for i, b := range batches {
		if i%2 == 0 {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := m.ApplyBatchCtx(ctx, b, datalog.Limits{}); !errors.Is(err, datalog.ErrCanceled) {
				t.Fatalf("batch %d: err = %v", i, err)
			}
			continue
		}
		if _, err := m.ApplyBatch(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		applied = append(applied, b)
	}
	ref, err := New(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range applied {
		if _, err := ref.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := maintainerFingerprint(m)
	want, _ := maintainerFingerprint(ref)
	if got != want {
		t.Fatalf("state diverged from reference:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
