package storage

import (
	"sort"
	"testing"
)

// checkConsistent verifies the relation's invariants after a mutation
// sequence: the dedup map mirrors the tuple store position by position, and
// every built posting list holds exactly the positions of its value.
func checkConsistent(t *testing.T, r *Relation) {
	t.Helper()
	if len(r.seen) != len(r.tuples) {
		t.Fatalf("seen has %d keys, store has %d tuples", len(r.seen), len(r.tuples))
	}
	for i, tup := range r.tuples {
		if pos, ok := r.seen[tup.Key()]; !ok || pos != i {
			t.Fatalf("tuple %v at position %d recorded at %d (present=%v)", tup, i, pos, ok)
		}
	}
	if r.indexes == nil || r.indexed != r.version {
		return // stale or absent: nothing more to check
	}
	for col, idx := range r.indexes {
		want := make(map[string][]int)
		for i, tup := range r.tuples {
			want[tup[col]] = append(want[tup[col]], i)
		}
		if len(idx) != len(want) {
			t.Fatalf("col %d: index has %d values, want %d", col, len(idx), len(want))
		}
		for v, ps := range idx {
			got := append([]int(nil), ps...)
			sort.Ints(got)
			if len(got) != len(want[v]) {
				t.Fatalf("col %d value %q: postings %v, want %v", col, v, got, want[v])
			}
			for i := range got {
				if got[i] != want[v][i] {
					t.Fatalf("col %d value %q: postings %v, want %v", col, v, got, want[v])
				}
			}
		}
	}
}

func TestRemoveFrozenMaintainsIndexes(t *testing.T) {
	r := NewRelation("r", 2)
	rows := []Tuple{{"a", "1"}, {"b", "2"}, {"a", "3"}, {"c", "2"}, {"b", "1"}}
	for _, tu := range rows {
		r.Insert(tu)
	}
	r.BuildIndexes()
	if !r.Frozen() {
		t.Fatal("expected frozen after BuildIndexes")
	}
	if !r.Remove(Tuple{"b", "2"}) {
		t.Fatal("Remove of present tuple reported absent")
	}
	if !r.Frozen() {
		t.Fatal("relation should stay frozen across a maintained Remove")
	}
	if r.Contains(Tuple{"b", "2"}) {
		t.Fatal("removed tuple still Contains")
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	checkConsistent(t, r)
	// The swapped-down tuple (the former tail) must still be probeable.
	ps, ok := r.LookupPositions(0, "b")
	if !ok || len(ps) != 1 || r.tuples[ps[0]].Key() != (Tuple{"b", "1"}).Key() {
		t.Fatalf("probe for swapped tuple failed: ps=%v ok=%v", ps, ok)
	}
	// Removing the absent tuple again is a no-op.
	if r.Remove(Tuple{"b", "2"}) {
		t.Fatal("Remove of absent tuple reported present")
	}
	// Drain the relation entirely, checking invariants throughout.
	for _, tu := range []Tuple{{"a", "1"}, {"b", "1"}, {"a", "3"}, {"c", "2"}} {
		if !r.Remove(tu) {
			t.Fatalf("Remove(%v) reported absent", tu)
		}
		checkConsistent(t, r)
	}
	if r.Len() != 0 || !r.Frozen() {
		t.Fatalf("drained relation: Len=%d Frozen=%v", r.Len(), r.Frozen())
	}
}

func TestRemovePartiallyIndexed(t *testing.T) {
	r := NewRelation("r", 3)
	for _, tu := range []Tuple{{"a", "x", "1"}, {"b", "y", "2"}, {"a", "y", "3"}} {
		r.Insert(tu)
	}
	r.BuildColumnIndex(1) // only column 1 built
	if !r.Remove(Tuple{"a", "x", "1"}) {
		t.Fatal("Remove reported absent")
	}
	checkConsistent(t, r)
	if _, ok := r.ColumnIndex(1); !ok {
		t.Fatal("built column index should survive a maintained Remove")
	}
	ps, ok := r.LookupPositions(1, "y")
	if !ok || len(ps) != 2 {
		t.Fatalf("col-1 probe after Remove: ps=%v ok=%v", ps, ok)
	}
}

func TestRemoveUnindexed(t *testing.T) {
	r := NewRelation("r", 2)
	r.Insert(Tuple{"a", "1"})
	r.Insert(Tuple{"b", "2"})
	if !r.Remove(Tuple{"a", "1"}) {
		t.Fatal("Remove reported absent")
	}
	if r.Len() != 1 || r.Contains(Tuple{"a", "1"}) || !r.Contains(Tuple{"b", "2"}) {
		t.Fatal("unindexed Remove left wrong contents")
	}
	checkConsistent(t, r)
	// A later index build over the mutated store must be correct.
	r.BuildIndexes()
	checkConsistent(t, r)
}

func TestRemoveStaleIndexInvalidates(t *testing.T) {
	r := NewRelation("r", 2)
	r.Insert(Tuple{"a", "1"})
	r.BuildIndexes()
	// Make the index stale the same way a stale Insert does: index, then
	// bump the version by an unmaintained mutation path. Here: remove then
	// re-add after dropping freshness via a direct version change is not
	// possible from outside, so emulate by building only after an insert.
	r2 := NewRelation("s", 2)
	r2.Insert(Tuple{"a", "1"})
	r2.BuildIndexes()
	r2.Insert(Tuple{"b", "2"}) // maintained: stays frozen
	if !r2.Frozen() {
		t.Fatal("maintained insert should keep relation frozen")
	}
	if !r2.Remove(Tuple{"a", "1"}) {
		t.Fatal("Remove reported absent")
	}
	checkConsistent(t, r2)
}

func TestCheckedRemoveArity(t *testing.T) {
	r := NewRelation("r", 2)
	r.Insert(Tuple{"a", "1"})
	if _, err := r.CheckedRemove(Tuple{"a"}); err == nil {
		t.Fatal("CheckedRemove of wrong-width tuple should error")
	}
	ok, err := r.CheckedRemove(Tuple{"a", "1"})
	if err != nil || !ok {
		t.Fatalf("CheckedRemove = %v, %v", ok, err)
	}
}

func TestTruncateToAfterRemove(t *testing.T) {
	// After a swap-remove, posting lists are no longer position-sorted:
	// TruncateTo must still repair them (the old tail-pop shortcut breaks).
	r := NewRelation("r", 2)
	for _, tu := range []Tuple{{"a", "1"}, {"b", "1"}, {"c", "1"}, {"d", "1"}} {
		r.Insert(tu)
	}
	r.BuildIndexes()
	r.Remove(Tuple{"a", "1"}) // d swaps into position 0
	n := r.Len()
	r.Insert(Tuple{"e", "1"})
	r.Insert(Tuple{"f", "1"})
	r.TruncateTo(n)
	if r.Len() != n || r.Contains(Tuple{"e", "1"}) || r.Contains(Tuple{"f", "1"}) {
		t.Fatal("TruncateTo after Remove left wrong contents")
	}
	if !r.Frozen() {
		t.Fatal("TruncateTo over maintained indexes should keep them")
	}
	checkConsistent(t, r)
}

func TestPartitionedRemoveRoutesToOwner(t *testing.T) {
	pr := NewPartitionedRelation("r", 2, 0, 4)
	rows := []Tuple{{"a", "1"}, {"b", "2"}, {"c", "3"}, {"d", "4"}, {"e", "5"}}
	for _, tu := range rows {
		pr.Insert(tu)
	}
	pr.BuildIndexes()
	if !pr.Remove(Tuple{"c", "3"}) {
		t.Fatal("Remove reported absent")
	}
	if pr.Contains(Tuple{"c", "3"}) || pr.Len() != 4 {
		t.Fatal("partitioned Remove left wrong contents")
	}
	if !pr.Frozen() {
		t.Fatal("non-owner shards must stay frozen; owner maintains in place")
	}
	// Only the owner shard may have been touched.
	owner := pr.Owner(Tuple{"c", "3"})
	for i := 0; i < pr.NumShards(); i++ {
		checkConsistent(t, pr.Shard(i))
		if pr.Shard(i) != owner && pr.Shard(i).Contains(Tuple{"c", "3"}) {
			t.Fatal("tuple survives in non-owner shard")
		}
	}
	if pr.Remove(Tuple{"c", "3"}) {
		t.Fatal("second Remove reported present")
	}
	if _, err := pr.CheckedRemove(Tuple{"x"}); err == nil {
		t.Fatal("CheckedRemove of wrong-width tuple should error")
	}
}

func TestDatabaseRemove(t *testing.T) {
	db := NewDatabase()
	db.Insert("r", Tuple{"a", "1"})
	if db.Remove("missing", Tuple{"a"}) {
		t.Fatal("Remove from missing relation reported present")
	}
	if db.Remove("r", Tuple{"a"}) {
		t.Fatal("Remove with wrong arity reported present")
	}
	if !db.Remove("r", Tuple{"a", "1"}) {
		t.Fatal("Remove of present tuple reported absent")
	}
	if db.Relation("r").Len() != 0 {
		t.Fatal("tuple survives Remove")
	}
}
