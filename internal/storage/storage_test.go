package storage

import (
	"testing"
	"testing/quick"

	"repro/internal/cq"
)

func TestTupleKeyAndClone(t *testing.T) {
	a := Tuple{"x", "y"}
	b := Tuple{"x", "y"}
	if a.Key() != b.Key() {
		t.Fatal("equal tuples have different keys")
	}
	// Keys must distinguish boundary placement.
	if (Tuple{"xy", ""}).Key() == (Tuple{"x", "y"}).Key() {
		t.Fatal("key collision across boundaries")
	}
	c := a.Clone()
	c[0] = "z"
	if a[0] != "x" {
		t.Fatal("Clone shares storage")
	}
}

func TestRelationInsertDedup(t *testing.T) {
	r := NewRelation("r", 2)
	if !r.Insert(Tuple{"a", "b"}) {
		t.Fatal("first insert not new")
	}
	if r.Insert(Tuple{"a", "b"}) {
		t.Fatal("duplicate insert reported new")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	if !r.Contains(Tuple{"a", "b"}) || r.Contains(Tuple{"b", "a"}) {
		t.Fatal("Contains wrong")
	}
	if r.Name() != "r" || r.Arity() != 2 {
		t.Fatal("metadata wrong")
	}
}

func TestRelationInsertArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	NewRelation("r", 2).Insert(Tuple{"a"})
}

func TestRelationInsertCopiesTuple(t *testing.T) {
	r := NewRelation("r", 1)
	src := Tuple{"a"}
	r.Insert(src)
	src[0] = "mutated"
	if r.Tuples()[0][0] != "a" {
		t.Fatal("Insert retained caller's slice")
	}
}

func TestRelationLookup(t *testing.T) {
	r := NewRelation("e", 2)
	r.Insert(Tuple{"a", "b"})
	r.Insert(Tuple{"a", "c"})
	r.Insert(Tuple{"b", "c"})
	got := r.Lookup(0, "a")
	if len(got) != 2 {
		t.Fatalf("Lookup(0,a) = %v", got)
	}
	if len(r.Lookup(1, "c")) != 2 {
		t.Fatal("Lookup(1,c) wrong")
	}
	if len(r.Lookup(0, "zzz")) != 0 {
		t.Fatal("Lookup miss wrong")
	}
	if r.Lookup(5, "a") != nil || r.Lookup(-1, "a") != nil {
		t.Fatal("out-of-range column")
	}
	// Index must see tuples inserted after it was built.
	r.Insert(Tuple{"a", "d"})
	if len(r.Lookup(0, "a")) != 3 {
		t.Fatal("stale index after insert")
	}
}

func TestDatabaseBasics(t *testing.T) {
	db := NewDatabase()
	if err := db.Insert("r", Tuple{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("r", Tuple{"a"}); err == nil {
		t.Fatal("arity change accepted")
	}
	if db.Relation("r") == nil || db.Relation("nope") != nil {
		t.Fatal("Relation lookup wrong")
	}
	if _, err := db.Ensure("r", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Ensure("r", 3); err == nil {
		t.Fatal("Ensure with wrong arity accepted")
	}
	if got := db.Predicates(); len(got) != 1 || got[0] != "r" {
		t.Fatalf("Predicates = %v", got)
	}
	if db.TotalTuples() != 1 {
		t.Fatalf("TotalTuples = %d", db.TotalTuples())
	}
}

func TestDatabaseFacts(t *testing.T) {
	db := NewDatabase()
	if err := db.InsertFact(cq.NewAtom("r", cq.Const("a"), cq.Const("b"))); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertFact(cq.NewAtom("r", cq.Var("X"), cq.Const("b"))); err == nil {
		t.Fatal("non-ground fact accepted")
	}
	err := db.LoadFacts([]cq.Atom{
		cq.NewAtom("s", cq.Const("c")),
		cq.NewAtom("s", cq.Const("d")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("s").Len() != 2 {
		t.Fatal("LoadFacts missed tuples")
	}
}

func TestDatabaseClone(t *testing.T) {
	db := NewDatabase()
	db.Insert("r", Tuple{"a"})
	cl := db.Clone()
	cl.Insert("r", Tuple{"b"})
	cl.Insert("s", Tuple{"c"})
	if db.Relation("r").Len() != 1 || db.Relation("s") != nil {
		t.Fatal("Clone shares state")
	}
}

func TestSortAndEqual(t *testing.T) {
	a := []Tuple{{"b"}, {"a"}}
	SortTuples(a)
	if a[0][0] != "a" {
		t.Fatal("SortTuples wrong")
	}
	if !TuplesEqual([]Tuple{{"x"}, {"y"}}, []Tuple{{"y"}, {"x"}}) {
		t.Fatal("TuplesEqual order-sensitive")
	}
	if TuplesEqual([]Tuple{{"x"}}, []Tuple{{"y"}}) {
		t.Fatal("TuplesEqual false positive")
	}
	if TuplesEqual([]Tuple{{"x"}}, []Tuple{{"x"}, {"x"}}) {
		t.Fatal("TuplesEqual length-insensitive")
	}
}

func TestQuickInsertLookupConsistent(t *testing.T) {
	f := func(vals []uint8) bool {
		r := NewRelation("r", 1)
		want := make(map[string]bool)
		for _, v := range vals {
			s := string(rune('a' + v%16))
			r.Insert(Tuple{s})
			want[s] = true
		}
		if r.Len() != len(want) {
			return false
		}
		for s := range want {
			if len(r.Lookup(0, s)) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestInsertMaintainsFrozenIndexes is the live-update regression test: an
// insert after BuildIndexes must append to the existing column indexes
// instead of invalidating them (previously the version bump silently marked
// every index stale, forcing a full O(n) per-column rebuild on the next
// lookup), and the relation must stay Frozen across maintained inserts.
func TestInsertMaintainsFrozenIndexes(t *testing.T) {
	r := NewRelation("r", 2)
	r.Insert(Tuple{"a", "1"})
	r.Insert(Tuple{"b", "2"})
	r.BuildIndexes()
	if !r.Frozen() {
		t.Fatal("not frozen after BuildIndexes")
	}

	if !r.Insert(Tuple{"a", "3"}) {
		t.Fatal("insert not new")
	}
	if !r.Frozen() {
		t.Fatal("maintained insert unfroze the relation")
	}
	// Both old and new tuples must be reachable through the maintained
	// index, without any rebuild.
	pos, ok := r.LookupPositions(0, "a")
	if !ok || len(pos) != 2 {
		t.Fatalf("LookupPositions(0,a) = %v, %v; want 2 positions", pos, ok)
	}
	if got := r.Lookup(1, "3"); len(got) != 1 || got[0][0] != "a" {
		t.Fatalf("Lookup(1,3) = %v", got)
	}
	// Duplicate inserts must not disturb the indexes.
	if r.Insert(Tuple{"a", "3"}) {
		t.Fatal("duplicate reported new")
	}
	if pos, _ := r.LookupPositions(0, "a"); len(pos) != 2 {
		t.Fatalf("duplicate insert changed index: %v", pos)
	}
}

// TestInsertMaintainsPartialIndexes: a relation with only some columns
// indexed (one-shot freeze paths build exactly the probed columns) keeps
// those indexes fresh across inserts too, and building a further column
// later starts from the complete tuple set.
func TestInsertMaintainsPartialIndexes(t *testing.T) {
	r := NewRelation("r", 2)
	r.Insert(Tuple{"a", "1"})
	r.BuildColumnIndex(0)
	if r.Frozen() {
		t.Fatal("partially indexed relation reported frozen")
	}
	r.Insert(Tuple{"b", "2"})
	if pos, ok := r.LookupPositions(0, "b"); !ok || len(pos) != 1 {
		t.Fatalf("maintained partial index lost the insert: %v, %v", pos, ok)
	}
	// Column 1 was never built; building it now must include every tuple.
	r.BuildColumnIndex(1)
	if pos, ok := r.LookupPositions(1, "1"); !ok || len(pos) != 1 {
		t.Fatalf("late-built index incomplete: %v, %v", pos, ok)
	}
	if !r.Frozen() {
		t.Fatal("all columns built, still not frozen")
	}
}

// TestInsertUnindexedStaysUnindexed: inserts into a never-indexed relation
// build nothing (maintenance only applies to already-built indexes), and a
// later lazy build sees every tuple.
func TestInsertUnindexedStaysUnindexed(t *testing.T) {
	r := NewRelation("r", 1)
	r.Insert(Tuple{"x"})
	if _, ok := r.LookupPositions(0, "x"); ok {
		t.Fatal("unindexed relation reported positions")
	}
	r.Insert(Tuple{"y"})
	if r.Frozen() {
		t.Fatal("insert froze an unindexed relation")
	}
	if got := r.Lookup(0, "y"); len(got) != 1 {
		t.Fatalf("Lookup after lazy build = %v", got)
	}
}
