package storage

import (
	"testing"
	"testing/quick"

	"repro/internal/cq"
)

func TestTupleKeyAndClone(t *testing.T) {
	a := Tuple{"x", "y"}
	b := Tuple{"x", "y"}
	if a.Key() != b.Key() {
		t.Fatal("equal tuples have different keys")
	}
	// Keys must distinguish boundary placement.
	if (Tuple{"xy", ""}).Key() == (Tuple{"x", "y"}).Key() {
		t.Fatal("key collision across boundaries")
	}
	c := a.Clone()
	c[0] = "z"
	if a[0] != "x" {
		t.Fatal("Clone shares storage")
	}
}

func TestRelationInsertDedup(t *testing.T) {
	r := NewRelation("r", 2)
	if !r.Insert(Tuple{"a", "b"}) {
		t.Fatal("first insert not new")
	}
	if r.Insert(Tuple{"a", "b"}) {
		t.Fatal("duplicate insert reported new")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	if !r.Contains(Tuple{"a", "b"}) || r.Contains(Tuple{"b", "a"}) {
		t.Fatal("Contains wrong")
	}
	if r.Name() != "r" || r.Arity() != 2 {
		t.Fatal("metadata wrong")
	}
}

func TestRelationInsertArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	NewRelation("r", 2).Insert(Tuple{"a"})
}

func TestRelationInsertCopiesTuple(t *testing.T) {
	r := NewRelation("r", 1)
	src := Tuple{"a"}
	r.Insert(src)
	src[0] = "mutated"
	if r.Tuples()[0][0] != "a" {
		t.Fatal("Insert retained caller's slice")
	}
}

func TestRelationLookup(t *testing.T) {
	r := NewRelation("e", 2)
	r.Insert(Tuple{"a", "b"})
	r.Insert(Tuple{"a", "c"})
	r.Insert(Tuple{"b", "c"})
	got := r.Lookup(0, "a")
	if len(got) != 2 {
		t.Fatalf("Lookup(0,a) = %v", got)
	}
	if len(r.Lookup(1, "c")) != 2 {
		t.Fatal("Lookup(1,c) wrong")
	}
	if len(r.Lookup(0, "zzz")) != 0 {
		t.Fatal("Lookup miss wrong")
	}
	if r.Lookup(5, "a") != nil || r.Lookup(-1, "a") != nil {
		t.Fatal("out-of-range column")
	}
	// Index must see tuples inserted after it was built.
	r.Insert(Tuple{"a", "d"})
	if len(r.Lookup(0, "a")) != 3 {
		t.Fatal("stale index after insert")
	}
}

func TestDatabaseBasics(t *testing.T) {
	db := NewDatabase()
	if err := db.Insert("r", Tuple{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("r", Tuple{"a"}); err == nil {
		t.Fatal("arity change accepted")
	}
	if db.Relation("r") == nil || db.Relation("nope") != nil {
		t.Fatal("Relation lookup wrong")
	}
	if _, err := db.Ensure("r", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Ensure("r", 3); err == nil {
		t.Fatal("Ensure with wrong arity accepted")
	}
	if got := db.Predicates(); len(got) != 1 || got[0] != "r" {
		t.Fatalf("Predicates = %v", got)
	}
	if db.TotalTuples() != 1 {
		t.Fatalf("TotalTuples = %d", db.TotalTuples())
	}
}

func TestDatabaseFacts(t *testing.T) {
	db := NewDatabase()
	if err := db.InsertFact(cq.NewAtom("r", cq.Const("a"), cq.Const("b"))); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertFact(cq.NewAtom("r", cq.Var("X"), cq.Const("b"))); err == nil {
		t.Fatal("non-ground fact accepted")
	}
	err := db.LoadFacts([]cq.Atom{
		cq.NewAtom("s", cq.Const("c")),
		cq.NewAtom("s", cq.Const("d")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("s").Len() != 2 {
		t.Fatal("LoadFacts missed tuples")
	}
}

func TestDatabaseClone(t *testing.T) {
	db := NewDatabase()
	db.Insert("r", Tuple{"a"})
	cl := db.Clone()
	cl.Insert("r", Tuple{"b"})
	cl.Insert("s", Tuple{"c"})
	if db.Relation("r").Len() != 1 || db.Relation("s") != nil {
		t.Fatal("Clone shares state")
	}
}

func TestSortAndEqual(t *testing.T) {
	a := []Tuple{{"b"}, {"a"}}
	SortTuples(a)
	if a[0][0] != "a" {
		t.Fatal("SortTuples wrong")
	}
	if !TuplesEqual([]Tuple{{"x"}, {"y"}}, []Tuple{{"y"}, {"x"}}) {
		t.Fatal("TuplesEqual order-sensitive")
	}
	if TuplesEqual([]Tuple{{"x"}}, []Tuple{{"y"}}) {
		t.Fatal("TuplesEqual false positive")
	}
	if TuplesEqual([]Tuple{{"x"}}, []Tuple{{"x"}, {"x"}}) {
		t.Fatal("TuplesEqual length-insensitive")
	}
}

func TestQuickInsertLookupConsistent(t *testing.T) {
	f := func(vals []uint8) bool {
		r := NewRelation("r", 1)
		want := make(map[string]bool)
		for _, v := range vals {
			s := string(rune('a' + v%16))
			r.Insert(Tuple{s})
			want[s] = true
		}
		if r.Len() != len(want) {
			return false
		}
		for s := range want {
			if len(r.Lookup(0, s)) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
