package storage

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	db := NewDatabase()
	db.Insert("r", Tuple{"a", "b"})
	db.Insert("r", Tuple{"c", "with space"})
	db.Insert("s", Tuple{"42"})
	db.Insert("s", Tuple{"-3.5"})

	var buf bytes.Buffer
	n, err := db.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Equal(back) {
		t.Fatalf("round trip lost data:\n%s\nvs\n%s", db.Summary(), back.Summary())
	}
}

func TestWriteToDeterministic(t *testing.T) {
	mk := func(order []Tuple) string {
		db := NewDatabase()
		for _, t := range order {
			db.Insert("r", t)
		}
		var buf bytes.Buffer
		if _, err := db.WriteTo(&buf); err != nil {
			panic(err)
		}
		return buf.String()
	}
	a := mk([]Tuple{{"x"}, {"a"}, {"m"}})
	b := mk([]Tuple{{"m"}, {"x"}, {"a"}})
	if a != b {
		t.Fatalf("serialisation depends on insertion order:\n%q\n%q", a, b)
	}
}

func TestReadDatabaseRejectsRules(t *testing.T) {
	if _, err := ReadDatabase(strings.NewReader("q(X) :- r(X).")); err == nil {
		t.Fatal("rules accepted")
	}
}

func TestReadDatabaseParseError(t *testing.T) {
	if _, err := ReadDatabase(strings.NewReader("broken((")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDatabaseEqual(t *testing.T) {
	a := NewDatabase()
	a.Insert("r", Tuple{"x"})
	b := NewDatabase()
	b.Insert("r", Tuple{"x"})
	if !a.Equal(b) {
		t.Fatal("equal databases reported different")
	}
	b.Insert("r", Tuple{"y"})
	if a.Equal(b) {
		t.Fatal("different sizes reported equal")
	}
	c := NewDatabase()
	c.Insert("s", Tuple{"x"})
	if a.Equal(c) {
		t.Fatal("different predicates reported equal")
	}
}

func TestSummary(t *testing.T) {
	db := NewDatabase()
	db.Insert("r", Tuple{"a", "b"})
	if got := db.Summary(); !strings.Contains(got, "r/2: 1 tuples") {
		t.Fatalf("Summary = %q", got)
	}
}
