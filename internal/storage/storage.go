// Package storage provides the in-memory relational substrate used to
// evaluate queries and rewritings: relations of string-valued tuples with
// set semantics, lazily built per-column hash indexes, and a database
// keyed by predicate name.
//
// Values are constant lexemes (see cq.Term); Skolem values produced by the
// inverse-rules algorithm live in the same domain as tagged strings and
// join by ordinary equality.
package storage

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"repro/internal/cq"
)

// ArityError reports a tuple width (or declared arity) conflicting with a
// relation's schema — the typed form of the errors the Ensure methods
// return and the serving-path alternative to Insert's invariant panic
// (CheckedInsert).
type ArityError struct {
	Pred string
	Want int
	Got  int
}

func (e *ArityError) Error() string {
	return fmt.Sprintf("storage: relation %s has arity %d, requested %d", e.Pred, e.Want, e.Got)
}

// Tuple is a row of constant values.
type Tuple []string

// Key returns a canonical encoding of the tuple for set membership.
func (t Tuple) Key() string { return strings.Join(t, "\x1f") }

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Compare orders tuples lexicographically column by column without
// materialising keys, reporting -1, 0 or +1; SortTuples uses it so
// sorting an answer set allocates nothing.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := strings.Compare(t[i], o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(o):
		return -1
	case len(t) > len(o):
		return 1
	default:
		return 0
	}
}

// Less reports t < o under Compare.
func (t Tuple) Less(o Tuple) bool { return t.Compare(o) < 0 }

// Relation is a named set of tuples of a fixed arity. Insertion order is
// preserved for deterministic iteration until the first Remove, which
// swap-fills the vacated position; duplicates are ignored.
type Relation struct {
	name   string
	arity  int
	tuples []Tuple
	seen   map[string]int // key -> position in tuples

	indexes map[int]map[string][]int // column -> value -> tuple positions
	version int                      // bumped on insert; invalidates indexes
	indexed int                      // version at which indexes were built
}

// NewRelation creates an empty relation.
func NewRelation(name string, arity int) *Relation {
	return &Relation{name: name, arity: arity, seen: make(map[string]int)}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Arity returns the tuple width.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of distinct tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Insert adds a tuple, reporting whether it was new. It panics on an arity
// mismatch — callers validate arity at the Database boundary.
//
// When the column indexes are current at the time of the insert (the
// relation was frozen with BuildIndexes, or lazily indexed and not stale),
// they are maintained incrementally: the new tuple's position is appended
// to each built index in O(built columns) and the relation stays Frozen.
// Only an insert over already-stale indexes leaves them invalidated. Like
// every mutation this carries the single-writer requirement — the live
// engine serializes inserts behind its update lock.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("storage: relation %s/%d: inserting tuple of width %d", r.name, r.arity, len(t)))
	}
	k := t.Key()
	if _, dup := r.seen[k]; dup {
		return false
	}
	maintained := r.indexes != nil && r.indexed == r.version
	pos := len(r.tuples)
	r.seen[k] = pos
	r.tuples = append(r.tuples, t.Clone())
	r.version++
	if maintained {
		for col, idx := range r.indexes {
			idx[t[col]] = append(idx[t[col]], pos)
		}
		r.indexed = r.version
	}
	return true
}

// CheckedInsert is Insert returning a typed *ArityError instead of
// panicking on a width mismatch — the serving-boundary variant for tuples
// arriving from outside the process, where a malformed row is an input
// error, not a programming error.
func (r *Relation) CheckedInsert(t Tuple) (bool, error) {
	if len(t) != r.arity {
		return false, &ArityError{Pred: r.name, Want: r.arity, Got: len(t)}
	}
	return r.Insert(t), nil
}

// Remove deletes a tuple, reporting whether it was present. Like Insert it
// panics on an arity mismatch — callers validate arity at the Database
// boundary.
//
// The vacated position is filled by swapping the last tuple down, so a
// removal is O(1) in the tuple store. When the column indexes are current
// they are maintained incrementally in O(arity) amortized, the same way
// Insert appends: the removed position is deleted from each built posting
// list and the swapped tuple's entries are repointed, so the relation stays
// Frozen across removals. Over stale indexes the version bump invalidates
// them as usual. Single-writer, like every mutation.
func (r *Relation) Remove(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("storage: relation %s/%d: removing tuple of width %d", r.name, r.arity, len(t)))
	}
	k := t.Key()
	pos, ok := r.seen[k]
	if !ok {
		return false
	}
	maintained := r.indexes != nil && r.indexed == r.version
	last := len(r.tuples) - 1
	if maintained {
		for col, idx := range r.indexes {
			removePosting(idx, r.tuples[pos][col], pos)
		}
	}
	if pos != last {
		moved := r.tuples[last]
		if maintained {
			for col, idx := range r.indexes {
				repointPosting(idx, moved[col], last, pos)
			}
		}
		r.tuples[pos] = moved
		r.seen[moved.Key()] = pos
	}
	r.tuples[last] = nil
	r.tuples = r.tuples[:last]
	delete(r.seen, k)
	r.version++
	if maintained {
		r.indexed = r.version
	}
	return true
}

// CheckedRemove is Remove returning a typed *ArityError instead of
// panicking on a width mismatch — the serving-boundary variant for tuples
// arriving from outside the process.
func (r *Relation) CheckedRemove(t Tuple) (bool, error) {
	if len(t) != r.arity {
		return false, &ArityError{Pred: r.name, Want: r.arity, Got: len(t)}
	}
	return r.Remove(t), nil
}

// removePosting deletes position pos from the posting list of val,
// searching by value (posting lists lose their sorted-by-position shape
// after the first swap-remove, so tail-popping is not an option).
func removePosting(idx map[string][]int, val string, pos int) {
	ps := idx[val]
	for i, p := range ps {
		if p == pos {
			ps[i] = ps[len(ps)-1]
			ps = ps[:len(ps)-1]
			if len(ps) == 0 {
				delete(idx, val)
			} else {
				idx[val] = ps
			}
			return
		}
	}
}

// repointPosting rewrites one occurrence of position from to position to in
// the posting list of val — the index half of a swap-fill.
func repointPosting(idx map[string][]int, val string, from, to int) {
	ps := idx[val]
	for i, p := range ps {
		if p == from {
			ps[i] = to
			return
		}
	}
}

// TruncateTo discards every tuple from position n onward, restoring the
// relation to the state it had when Len() was n — the rollback primitive
// for atomic insert-only batch application (batches containing removals
// roll back through an operation journal instead, because removals
// swap-fill positions and a length snapshot no longer identifies them).
// Dedup keys of the removed tuples are forgotten, and maintained column
// indexes are repaired in place by deleting the removed positions from the
// affected posting lists; stale indexes are simply discarded. It carries
// the same single-writer requirement as Insert.
func (r *Relation) TruncateTo(n int) {
	if n < 0 {
		n = 0
	}
	if n >= len(r.tuples) {
		return
	}
	removed := r.tuples[n:]
	maintained := r.indexes != nil && r.indexed == r.version
	for off, t := range removed {
		delete(r.seen, t.Key())
		if maintained {
			for col, idx := range r.indexes {
				removePosting(idx, t[col], n+off)
			}
		}
	}
	r.tuples = r.tuples[:n]
	r.version++
	if maintained {
		r.indexed = r.version
	}
}

// Contains reports whether the relation holds the tuple.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.seen[t.Key()]
	return ok
}

// ContainsKey reports whether the relation holds a tuple with the given
// canonical key (Tuple.Key). Hot loops that already computed the key for
// their own dedup avoid re-encoding the tuple.
func (r *Relation) ContainsKey(k string) bool {
	_, ok := r.seen[k]
	return ok
}

// Tuples returns the tuples in insertion order. The slice is shared; do not
// modify.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// BuildIndexes eagerly builds the hash index for every column at the
// current version. After it returns — and as long as no further inserts
// happen — Lookup never mutates the relation, so any number of goroutines
// may read it concurrently. The serving engine calls this once at
// construction to freeze its database for parallel evaluation. Inserts
// after BuildIndexes maintain the indexes incrementally (see Insert), so
// the relation stays frozen across live updates; an insert still mutates,
// so updates and reads must be externally serialized.
func (r *Relation) BuildIndexes() {
	for col := 0; col < r.arity; col++ {
		r.BuildColumnIndex(col)
	}
}

// BuildColumnIndex builds the hash index of a single column at the current
// version, discarding stale indexes first. Like Lookup's lazy build it
// mutates the relation, so it carries the same single-writer requirement;
// one-shot evaluation uses it to index only the columns a plan probes.
func (r *Relation) BuildColumnIndex(col int) {
	if col < 0 || col >= r.arity {
		return
	}
	if r.indexes == nil || r.indexed != r.version {
		r.indexes = make(map[int]map[string][]int, r.arity)
		r.indexed = r.version
	}
	if _, ok := r.indexes[col]; ok {
		return
	}
	idx := make(map[string][]int)
	for i, t := range r.tuples {
		idx[t[col]] = append(idx[t[col]], i)
	}
	r.indexes[col] = idx
}

// Frozen reports whether every column index is built at the current
// version. A frozen relation is safe for concurrent readers: Lookup and
// LookupPositions never mutate it, and Insert maintains the indexes in
// place, so a relation stays frozen across maintained inserts.
func (r *Relation) Frozen() bool {
	return r.indexes != nil && r.indexed == r.version && len(r.indexes) == r.arity
}

// LookupPositions returns the positions (indexes into Tuples()) of the
// tuples whose column col equals val. Unlike Lookup it never builds or
// repairs indexes: when the index for col is stale or absent it reports
// ok=false and the caller must scan instead. The returned slice is shared
// with the index; do not modify. Because it never mutates the relation it
// is safe to call from any number of goroutines once the relation is
// frozen (BuildIndexes), and — returning positions rather than a fresh
// []Tuple — it allocates nothing.
func (r *Relation) LookupPositions(col int, val string) (positions []int, ok bool) {
	idx, ok := r.ColumnIndex(col)
	if !ok {
		return nil, false
	}
	return idx[val], true
}

// ColumnIndex returns the hash index of one column (value → tuple
// positions) when it is built at the current version, without ever
// building it. Hot loops that probe the same column many times resolve
// the index once through this accessor instead of paying two map hops per
// LookupPositions call. The returned map is shared; do not modify.
func (r *Relation) ColumnIndex(col int) (map[string][]int, bool) {
	if col < 0 || col >= r.arity || r.indexes == nil || r.indexed != r.version {
		return nil, false
	}
	idx, ok := r.indexes[col]
	return idx, ok
}

// Lookup returns the tuples whose column col equals val, using a lazily
// built hash index. Building the index mutates the relation, so concurrent
// readers must freeze it first (BuildIndexes); race-sensitive callers
// should prefer LookupPositions, which falls back to reporting ok=false
// instead of mutating.
func (r *Relation) Lookup(col int, val string) []Tuple {
	if col < 0 || col >= r.arity {
		return nil
	}
	r.BuildColumnIndex(col)
	positions := r.indexes[col][val]
	out := make([]Tuple, len(positions))
	for i, p := range positions {
		out[i] = r.tuples[p]
	}
	return out
}

// Database is a collection of relations keyed by predicate name.
type Database struct {
	rels map[string]*Relation
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// Relation returns the relation for pred, or nil if absent.
func (db *Database) Relation(pred string) *Relation { return db.rels[pred] }

// Ensure returns the relation for pred, creating it with the given arity if
// absent. It returns a typed *ArityError if the relation exists with
// another arity.
func (db *Database) Ensure(pred string, arity int) (*Relation, error) {
	if r, ok := db.rels[pred]; ok {
		if r.arity != arity {
			return nil, &ArityError{Pred: pred, Want: r.arity, Got: arity}
		}
		return r, nil
	}
	r := NewRelation(pred, arity)
	db.rels[pred] = r
	return r, nil
}

// Drop removes the relation for pred, if present — the rollback companion
// to TruncateTo for relations a failed batch created.
func (db *Database) Drop(pred string) { delete(db.rels, pred) }

// Insert adds a tuple under pred, creating the relation on first use.
func (db *Database) Insert(pred string, t Tuple) error {
	r, err := db.Ensure(pred, len(t))
	if err != nil {
		return err
	}
	r.Insert(t)
	return nil
}

// Remove deletes a tuple under pred, reporting whether it was present. A
// missing relation or an arity mismatch both report false — removal of
// what is not there.
func (db *Database) Remove(pred string, t Tuple) bool {
	r, ok := db.rels[pred]
	if !ok || len(t) != r.arity {
		return false
	}
	return r.Remove(t)
}

// InsertFact adds a ground atom as a tuple.
func (db *Database) InsertFact(a cq.Atom) error {
	if !a.IsGround() {
		return fmt.Errorf("storage: fact %s is not ground", a)
	}
	t := make(Tuple, len(a.Args))
	for i, arg := range a.Args {
		t[i] = arg.Lex
	}
	return db.Insert(a.Pred, t)
}

// LoadFacts inserts a batch of ground atoms.
func (db *Database) LoadFacts(facts []cq.Atom) error {
	for _, f := range facts {
		if err := db.InsertFact(f); err != nil {
			return err
		}
	}
	return nil
}

// Predicates returns the relation names in sorted order.
func (db *Database) Predicates() []string {
	out := make([]string, 0, len(db.rels))
	for p := range db.rels {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// BuildIndexes freezes every relation for concurrent reads; see
// Relation.BuildIndexes.
func (db *Database) BuildIndexes() {
	for _, r := range db.rels {
		r.BuildIndexes()
	}
}

// Clone returns a deep copy of the database. Relations that were frozen
// are re-frozen in the copy, so cloning a serving database never silently
// demotes indexed probes back to scans.
func (db *Database) Clone() *Database {
	out := NewDatabase()
	for p, r := range db.rels {
		nr := NewRelation(p, r.arity)
		for _, t := range r.tuples {
			nr.Insert(t)
		}
		if r.Frozen() {
			nr.BuildIndexes()
		}
		out.rels[p] = nr
	}
	return out
}

// TotalTuples returns the number of tuples across all relations.
func (db *Database) TotalTuples() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// SortTuples orders a tuple slice lexicographically in place and returns it;
// useful for deterministic comparison in tests and reports.
func SortTuples(ts []Tuple) []Tuple {
	slices.SortFunc(ts, Tuple.Compare)
	return ts
}

// TuplesEqual reports whether two tuple sets are equal regardless of order.
func TuplesEqual(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[string]int, len(a))
	for _, t := range a {
		seen[t.Key()]++
	}
	for _, t := range b {
		k := t.Key()
		seen[k]--
		if seen[k] < 0 {
			return false
		}
	}
	return true
}
