package storage

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cq"
)

// WriteTo serialises the database as datalog facts, one per line, sorted by
// predicate and tuple for determinism. Values that need quoting in the
// surface syntax are quoted; the output round-trips through ReadDatabase.
func (db *Database) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	for _, pred := range db.Predicates() {
		rel := db.rels[pred]
		tuples := make([]Tuple, len(rel.tuples))
		copy(tuples, rel.tuples)
		SortTuples(tuples)
		for _, t := range tuples {
			parts := make([]string, len(t))
			for i, v := range t {
				parts[i] = cq.Const(v).String()
			}
			n, err := fmt.Fprintf(bw, "%s(%s).\n", pred, strings.Join(parts, ","))
			written += int64(n)
			if err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// ReadDatabase parses datalog facts from r into a new database. Rules in
// the input are rejected.
func ReadDatabase(r io.Reader) (*Database, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	prog, err := cq.ParseProgram(string(data))
	if err != nil {
		return nil, err
	}
	if len(prog.Queries) > 0 {
		return nil, fmt.Errorf("storage: input contains rules; only ground facts are allowed")
	}
	db := NewDatabase()
	if err := db.LoadFacts(prog.Facts); err != nil {
		return nil, err
	}
	return db, nil
}

// Equal reports whether two databases hold exactly the same relations and
// tuples.
func (db *Database) Equal(other *Database) bool {
	if len(db.rels) != len(other.rels) {
		return false
	}
	for pred, rel := range db.rels {
		orel, ok := other.rels[pred]
		if !ok || rel.Len() != orel.Len() || rel.Arity() != orel.Arity() {
			return false
		}
		for _, t := range rel.tuples {
			if !orel.Contains(t) {
				return false
			}
		}
	}
	return true
}

// Summary returns a one-line-per-relation description, for diagnostics.
func (db *Database) Summary() string {
	preds := db.Predicates()
	lines := make([]string, 0, len(preds))
	for _, p := range preds {
		lines = append(lines, fmt.Sprintf("%s/%d: %d tuples", p, db.rels[p].Arity(), db.rels[p].Len()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
