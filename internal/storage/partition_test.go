package storage

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestShardOfStable(t *testing.T) {
	if ShardOf("anything", 1) != 0 {
		t.Fatal("single shard must own everything")
	}
	if ShardOf("x", 0) != 0 {
		t.Fatal("degenerate shard count must clamp to 0")
	}
	for _, shards := range []int{2, 3, 8} {
		for i := 0; i < 200; i++ {
			v := fmt.Sprintf("v%d", i)
			s := ShardOf(v, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf(%q,%d) = %d out of range", v, shards, s)
			}
			if s != ShardOf(v, shards) {
				t.Fatalf("ShardOf(%q,%d) unstable", v, shards)
			}
		}
	}
}

func TestPartitionedRelationRouting(t *testing.T) {
	pr := NewPartitionedRelation("r", 2, 1, 4)
	if pr.PartitionColumn() != 1 || pr.NumShards() != 4 {
		t.Fatalf("partCol=%d shards=%d", pr.PartitionColumn(), pr.NumShards())
	}
	rng := rand.New(rand.NewSource(7))
	n := 0
	for i := 0; i < 500; i++ {
		tup := Tuple{fmt.Sprint(rng.Intn(100)), fmt.Sprint(rng.Intn(100))}
		if pr.Insert(tup) {
			n++
		}
		if !pr.Contains(tup) {
			t.Fatalf("inserted tuple %v not contained", tup)
		}
		if !pr.ContainsKeyed(tup, tup.Key()) {
			t.Fatalf("ContainsKeyed miss for %v", tup)
		}
	}
	if pr.Len() != n {
		t.Fatalf("Len=%d want %d distinct", pr.Len(), n)
	}
	// Every tuple must live in exactly the shard its partition value hashes to.
	for i := 0; i < pr.NumShards(); i++ {
		for _, tup := range pr.Shard(i).Tuples() {
			if ShardOf(tup[1], 4) != i {
				t.Fatalf("tuple %v in shard %d, owner %d", tup, i, ShardOf(tup[1], 4))
			}
		}
	}
	if got := len(pr.Tuples()); got != n {
		t.Fatalf("Tuples len=%d want %d", got, n)
	}
	// Duplicate insert routes to the same shard and is rejected there.
	dup := pr.Shard(0).Tuples()
	if len(dup) > 0 && pr.Insert(dup[0].Clone()) {
		t.Fatal("duplicate insert reported new")
	}
}

func TestPartitionedRelationDegenerateColumn(t *testing.T) {
	pr := NewPartitionedRelation("r", 2, 5, 3) // out-of-range column clamps to 0
	if pr.PartitionColumn() != 0 {
		t.Fatalf("partCol=%d want 0", pr.PartitionColumn())
	}
	pr.Insert(Tuple{"a", "b"})
	if pr.OwnerOf("a") != pr.Owner(Tuple{"a", "b"}) {
		t.Fatal("OwnerOf and Owner disagree")
	}
}

func TestPartitionedRelationInsertPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	NewPartitionedRelation("r", 2, 0, 2).Insert(Tuple{"a"})
}

func TestPartitionFlattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := NewDatabase()
	for i := 0; i < 400; i++ {
		db.Insert("e", Tuple{fmt.Sprint(rng.Intn(50)), fmt.Sprint(rng.Intn(50))})
		db.Insert("u", Tuple{fmt.Sprint(rng.Intn(30))})
	}
	pdb := Partition(db, 5, map[string]int{"e": 1})
	if pdb.NumShards() != 5 {
		t.Fatalf("shards=%d", pdb.NumShards())
	}
	if pdb.Relation("e").PartitionColumn() != 1 || pdb.Relation("u").PartitionColumn() != 0 {
		t.Fatal("partition-column policy not applied")
	}
	if pdb.TotalTuples() != db.TotalTuples() {
		t.Fatalf("total %d want %d", pdb.TotalTuples(), db.TotalTuples())
	}
	flat := pdb.Flatten()
	for _, pred := range db.Predicates() {
		if !TuplesEqual(flat.Relation(pred).Tuples(), db.Relation(pred).Tuples()) {
			t.Fatalf("flatten mismatch for %s", pred)
		}
	}
	if got, want := fmt.Sprint(pdb.Predicates()), fmt.Sprint(db.Predicates()); got != want {
		t.Fatalf("predicates %s want %s", got, want)
	}
}

func TestPartitionedDatabaseEnsureAndFreeze(t *testing.T) {
	pdb := NewPartitionedDatabase(3)
	if _, err := pdb.Ensure("r", 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := pdb.Ensure("r", 3, 0); err == nil {
		t.Fatal("arity conflict not reported")
	}
	if err := pdb.Insert("r", Tuple{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := pdb.Insert("s", Tuple{"c"}); err != nil {
		t.Fatal(err)
	}
	pr := pdb.Relation("r")
	if pr.Frozen() {
		t.Fatal("unfrozen relation reports frozen")
	}
	pdb.BuildIndexes()
	if !pr.Frozen() || !pdb.Relation("s").Frozen() {
		t.Fatal("BuildIndexes did not freeze every shard")
	}
	// Maintained insert keeps the shards frozen.
	pr.Insert(Tuple{"x", "y"})
	if !pr.Frozen() {
		t.Fatal("maintained insert unfroze the relation")
	}
	if pdb.Relation("missing") != nil {
		t.Fatal("missing relation not nil")
	}
}

func TestCloneKeepsFrozenState(t *testing.T) {
	db := NewDatabase()
	db.Insert("r", Tuple{"a", "b"})
	db.Insert("s", Tuple{"c"})
	db.Relation("r").BuildIndexes()
	clone := db.Clone()
	if !clone.Relation("r").Frozen() {
		t.Fatal("clone of frozen relation must be frozen")
	}
	if clone.Relation("s").Frozen() {
		t.Fatal("clone of unfrozen relation must stay unfrozen")
	}
	// The clone is independent: inserting into it leaves the source alone.
	clone.Insert("r", Tuple{"x", "y"})
	if db.Relation("r").Len() != 1 {
		t.Fatal("clone shares storage with source")
	}
	if pos, ok := clone.Relation("r").LookupPositions(0, "x"); !ok || len(pos) != 1 {
		t.Fatal("cloned frozen relation must serve maintained index probes")
	}
}
