package storage

import (
	"errors"
	"fmt"
	"testing"
)

func TestCheckedInsertArity(t *testing.T) {
	r := NewRelation("r", 2)
	ok, err := r.CheckedInsert(Tuple{"a", "b"})
	if err != nil || !ok {
		t.Fatalf("CheckedInsert = %v, %v", ok, err)
	}
	ok, err = r.CheckedInsert(Tuple{"a"})
	if ok || err == nil {
		t.Fatal("width mismatch should fail")
	}
	var ae *ArityError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T, want *ArityError", err)
	}
	if ae.Pred != "r" || ae.Want != 2 || ae.Got != 1 {
		t.Fatalf("ArityError = %+v", ae)
	}
	if r.Len() != 1 {
		t.Fatalf("failed insert mutated the relation: Len = %d", r.Len())
	}
}

func TestPartitionedCheckedInsertArity(t *testing.T) {
	pr := NewPartitionedRelation("r", 2, 0, 4)
	if ok, err := pr.CheckedInsert(Tuple{"a", "b"}); err != nil || !ok {
		t.Fatalf("CheckedInsert = %v, %v", ok, err)
	}
	_, err := pr.CheckedInsert(Tuple{"a", "b", "c"})
	var ae *ArityError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T (%v), want *ArityError", err, err)
	}
	if pr.Len() != 1 {
		t.Fatalf("failed insert mutated the relation: Len = %d", pr.Len())
	}
}

func TestEnsureReturnsArityError(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Ensure("r", 2); err != nil {
		t.Fatal(err)
	}
	_, err := db.Ensure("r", 3)
	if !errors.As(err, new(*ArityError)) {
		t.Fatalf("flat Ensure err = %T (%v)", err, err)
	}
	pdb := NewPartitionedDatabase(2)
	if _, err := pdb.Ensure("r", 2, 0); err != nil {
		t.Fatal(err)
	}
	_, err = pdb.Ensure("r", 3, 0)
	if !errors.As(err, new(*ArityError)) {
		t.Fatalf("partitioned Ensure err = %T (%v)", err, err)
	}
	// Message text is unchanged from the pre-typed error.
	want := "storage: relation r has arity 2, requested 3"
	if err.Error() != want {
		t.Fatalf("message = %q, want %q", err.Error(), want)
	}
}

func TestDrop(t *testing.T) {
	db := NewDatabase()
	db.Insert("r", Tuple{"a"})
	db.Drop("r")
	if db.Relation("r") != nil {
		t.Fatal("flat Drop left the relation")
	}
	pdb := NewPartitionedDatabase(2)
	pdb.Insert("r", Tuple{"a"})
	pdb.Drop("r")
	if pdb.Relation("r") != nil {
		t.Fatal("partitioned Drop left the relation")
	}
}

func TestTruncateToUnindexed(t *testing.T) {
	r := NewRelation("r", 1)
	for i := 0; i < 10; i++ {
		r.Insert(Tuple{fmt.Sprintf("v%d", i)})
	}
	r.TruncateTo(4)
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Contains(Tuple{"v7"}) {
		t.Fatal("truncated tuple still Contains")
	}
	// Re-inserting a truncated tuple must report it as new again.
	if !r.Insert(Tuple{"v7"}) {
		t.Fatal("re-insert after truncate reported duplicate")
	}
}

func TestTruncateToMaintainedIndexes(t *testing.T) {
	r := NewRelation("r", 2)
	for i := 0; i < 6; i++ {
		r.Insert(Tuple{fmt.Sprintf("k%d", i%3), fmt.Sprintf("v%d", i)})
	}
	r.BuildIndexes()
	// Maintained inserts extend the built indexes.
	r.Insert(Tuple{"k0", "v6"})
	r.Insert(Tuple{"k9", "v7"})
	if !r.Frozen() {
		t.Fatal("relation should stay frozen across maintained inserts")
	}
	r.TruncateTo(6)
	if !r.Frozen() {
		t.Fatal("relation should stay frozen across TruncateTo")
	}
	if got := r.Lookup(0, "k9"); len(got) != 0 {
		t.Fatalf("index still finds truncated tuple: %v", got)
	}
	if got := r.Lookup(0, "k0"); len(got) != 2 {
		t.Fatalf("k0 lookup = %v, want the 2 surviving tuples", got)
	}
	if got := r.Lookup(1, "v6"); len(got) != 0 {
		t.Fatalf("column-1 index still finds truncated tuple: %v", got)
	}
	// The index keeps answering correctly for further maintained inserts.
	r.Insert(Tuple{"k9", "v8"})
	if got := r.Lookup(0, "k9"); len(got) != 1 || got[0][1] != "v8" {
		t.Fatalf("post-truncate insert lookup = %v", got)
	}
}

func TestTruncateToNoop(t *testing.T) {
	r := NewRelation("r", 1)
	r.Insert(Tuple{"a"})
	r.BuildIndexes()
	r.TruncateTo(1) // n == Len: nothing to do
	if r.Len() != 1 || !r.Frozen() {
		t.Fatal("no-op truncate changed the relation")
	}
	r.TruncateTo(5) // n > Len: nothing to do
	if r.Len() != 1 {
		t.Fatal("oversized truncate changed the relation")
	}
}
