package storage

// Physically partitioned relations. A PartitionedRelation hash-partitions
// its tuples by one column into P independent shards, each an ordinary
// Relation with its own seen set and per-column hash indexes. Insert,
// Contains and index lookups therefore touch exactly one shard: concurrent
// readers of a frozen partitioned database never share index maps across
// shards, and a probe on the partition column resolves against an index
// 1/P-th the size of the monolithic one — the cache-locality and
// contention-freedom the sharded evaluator (internal/datalog) exploits.
//
// The partition column is a physical-design choice, picked per relation by
// the catalog's probe-column statistics (cost.Catalog.PartitionColumn):
// correctness never depends on it, only locality — a probe on any other
// column simply broadcasts across the shards.

import (
	"fmt"
	"sort"
	"strings"
)

// ShardOf routes a column value to its owning shard: FNV-1a over the value,
// reduced modulo the shard count. Every layer — storage inserts, the
// sharded executor's probe routing and its exchange (repartition) operators
// — must agree on this function, so it is the package's single router.
func ShardOf(val string, shards int) int {
	if shards <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(val); i++ {
		h ^= uint64(val[i])
		h *= prime64
	}
	return int(h % uint64(shards))
}

// PartitionedRelation is a named tuple set hash-partitioned by one column
// into independent shards. Each shard is an ordinary Relation: it keeps its
// own dedup set and column indexes, so shard-local operations never touch
// (or contend with) the other shards.
type PartitionedRelation struct {
	name    string
	arity   int
	partCol int
	shards  []*Relation
}

// NewPartitionedRelation creates an empty relation of the given arity,
// partitioned by column partCol into shards parts (minimum 1).
func NewPartitionedRelation(name string, arity, partCol, shards int) *PartitionedRelation {
	if shards < 1 {
		shards = 1
	}
	if partCol < 0 || partCol >= arity {
		partCol = 0
	}
	pr := &PartitionedRelation{name: name, arity: arity, partCol: partCol, shards: make([]*Relation, shards)}
	for i := range pr.shards {
		pr.shards[i] = NewRelation(name, arity)
	}
	return pr
}

// Name returns the relation name.
func (pr *PartitionedRelation) Name() string { return pr.name }

// Arity returns the tuple width.
func (pr *PartitionedRelation) Arity() int { return pr.arity }

// PartitionColumn returns the column tuples are hash-partitioned by.
func (pr *PartitionedRelation) PartitionColumn() int { return pr.partCol }

// NumShards returns the shard count.
func (pr *PartitionedRelation) NumShards() int { return len(pr.shards) }

// Shard returns shard i. The shard is a live view, not a copy: mutations
// carry the same single-writer requirement as Relation.
func (pr *PartitionedRelation) Shard(i int) *Relation { return pr.shards[i] }

// Owner returns the shard that owns (or would own) the tuple. Nullary
// tuples all live in shard 0.
func (pr *PartitionedRelation) Owner(t Tuple) *Relation {
	if pr.arity == 0 {
		return pr.shards[0]
	}
	return pr.shards[ShardOf(t[pr.partCol], len(pr.shards))]
}

// OwnerOf returns the shard owning tuples whose partition column equals val
// — the probe-routing primitive of the sharded executor.
func (pr *PartitionedRelation) OwnerOf(val string) *Relation {
	return pr.shards[ShardOf(val, len(pr.shards))]
}

// Len returns the number of distinct tuples across all shards.
func (pr *PartitionedRelation) Len() int {
	n := 0
	for _, s := range pr.shards {
		n += s.Len()
	}
	return n
}

// Insert routes the tuple to its owner shard, reporting whether it was new.
// Like Relation.Insert it panics on an arity mismatch and carries the
// single-writer requirement; shard-local indexes are maintained
// incrementally when built (see Relation.Insert).
func (pr *PartitionedRelation) Insert(t Tuple) bool {
	if len(t) != pr.arity {
		panic(fmt.Sprintf("storage: relation %s/%d: inserting tuple of width %d", pr.name, pr.arity, len(t)))
	}
	return pr.Owner(t).Insert(t)
}

// CheckedInsert is Insert with the arity check surfaced as a typed error
// (*ArityError) instead of a panic — the serving-path variant used at the
// engine boundary, where a malformed client tuple must not crash the
// process.
func (pr *PartitionedRelation) CheckedInsert(t Tuple) (bool, error) {
	if len(t) != pr.arity {
		return false, &ArityError{Pred: pr.name, Want: pr.arity, Got: len(t)}
	}
	return pr.Owner(t).Insert(t), nil
}

// Remove routes the retraction to its owner shard, reporting whether the
// tuple was present — the shard-local mirror of Relation.Remove, so only
// the owner shard's tuple store and indexes are touched. Like Insert it
// panics on an arity mismatch and carries the single-writer requirement.
func (pr *PartitionedRelation) Remove(t Tuple) bool {
	if len(t) != pr.arity {
		panic(fmt.Sprintf("storage: relation %s/%d: removing tuple of width %d", pr.name, pr.arity, len(t)))
	}
	return pr.Owner(t).Remove(t)
}

// CheckedRemove is Remove with the arity check surfaced as a typed error
// (*ArityError) instead of a panic.
func (pr *PartitionedRelation) CheckedRemove(t Tuple) (bool, error) {
	if len(t) != pr.arity {
		return false, &ArityError{Pred: pr.name, Want: pr.arity, Got: len(t)}
	}
	return pr.Owner(t).Remove(t), nil
}

// Contains reports whether the relation holds the tuple (one shard probe).
func (pr *PartitionedRelation) Contains(t Tuple) bool { return pr.Owner(t).Contains(t) }

// ContainsKeyed is Contains with the tuple's canonical key already computed
// — hot dedup loops route by the tuple and test by the key without
// re-encoding.
func (pr *PartitionedRelation) ContainsKeyed(t Tuple, key string) bool {
	return pr.Owner(t).ContainsKey(key)
}

// Tuples returns a fresh slice of all tuples, shard by shard (shard-major
// order). Unlike Relation.Tuples this allocates; iterate the shards
// directly in hot paths.
func (pr *PartitionedRelation) Tuples() []Tuple {
	out := make([]Tuple, 0, pr.Len())
	for _, s := range pr.shards {
		out = append(out, s.Tuples()...)
	}
	return out
}

// BuildIndexes freezes every shard for concurrent reads.
func (pr *PartitionedRelation) BuildIndexes() {
	for _, s := range pr.shards {
		s.BuildIndexes()
	}
}

// Frozen reports whether every shard is frozen (see Relation.Frozen).
func (pr *PartitionedRelation) Frozen() bool {
	for _, s := range pr.shards {
		if !s.Frozen() {
			return false
		}
	}
	return true
}

// PartitionedDatabase is a collection of hash-partitioned relations keyed
// by predicate name, all with the same shard count. It is the physical
// layout the sharded evaluator runs over; Partition builds one from an
// ordinary Database under a partition-column policy.
type PartitionedDatabase struct {
	shards int
	rels   map[string]*PartitionedRelation
}

// NewPartitionedDatabase creates an empty database whose relations will be
// partitioned into shards parts (minimum 1).
func NewPartitionedDatabase(shards int) *PartitionedDatabase {
	if shards < 1 {
		shards = 1
	}
	return &PartitionedDatabase{shards: shards, rels: make(map[string]*PartitionedRelation)}
}

// Partition re-buckets every relation of db into a partitioned database of
// the given shard count. partCols maps predicates to their partition
// column (cost.Catalog.PartitionColumn is the usual policy); missing
// predicates partition by column 0. db is not retained or mutated, and the
// result is unfrozen — callers freeze with BuildIndexes for concurrent
// reads, exactly like Database.
func Partition(db *Database, shards int, partCols map[string]int) *PartitionedDatabase {
	pdb := NewPartitionedDatabase(shards)
	for _, pred := range db.Predicates() {
		rel := db.Relation(pred)
		pr := NewPartitionedRelation(pred, rel.Arity(), partCols[pred], pdb.shards)
		if rel.Arity() == 0 {
			for _, t := range rel.Tuples() {
				pr.Insert(t)
			}
			pdb.rels[pred] = pr
			continue
		}
		// Bucket first, then compact each shard into its own arena: the
		// rewritten tuples are what make shard-local probes cache-resident
		// (see internTuples), and the physical payoff of partitioning on this
		// storage layout.
		buckets := make([][]Tuple, pdb.shards)
		for _, t := range rel.Tuples() {
			s := ShardOf(t[pr.partCol], pdb.shards)
			buckets[s] = append(buckets[s], t)
		}
		for s, bucket := range buckets {
			for _, t := range internTuples(bucket) {
				pr.shards[s].Insert(t)
			}
		}
		pdb.rels[pred] = pr
	}
	return pdb
}

// internTuples rewrites a shard's tuples so every column string points into
// one contiguous per-shard byte arena and every tuple header lives in one
// flat backing array. A monolithic database accretes its strings in load
// order, scattering a relation's bytes across the heap; after hash
// bucketing, a shard's candidate loop would still chase those scattered
// bytes and partitioning would buy no locality. Compacting at Partition
// time makes a shard's entire probe working set — index map, tuple headers,
// string bytes — proportional to 1/P and contiguous, which is where the
// sharded executor's speedup comes from on cache-bound joins. Values are
// deduplicated while interning, so repeated constants share one span.
func internTuples(tuples []Tuple) []Tuple {
	if len(tuples) == 0 {
		return nil
	}
	type span struct{ off, end int }
	var b strings.Builder
	spans := make(map[string]span, len(tuples))
	for _, t := range tuples {
		for _, v := range t {
			if _, ok := spans[v]; !ok {
				off := b.Len()
				b.WriteString(v)
				spans[v] = span{off, b.Len()}
			}
		}
	}
	arena := b.String()
	arity := len(tuples[0])
	flat := make([]string, len(tuples)*arity)
	out := make([]Tuple, len(tuples))
	for i, t := range tuples {
		nt := flat[i*arity : (i+1)*arity : (i+1)*arity]
		for j, v := range t {
			sp := spans[v]
			nt[j] = arena[sp.off:sp.end]
		}
		out[i] = nt
	}
	return out
}

// NumShards returns the shard count every relation uses.
func (pdb *PartitionedDatabase) NumShards() int { return pdb.shards }

// Relation returns the partitioned relation for pred, or nil if absent.
func (pdb *PartitionedDatabase) Relation(pred string) *PartitionedRelation { return pdb.rels[pred] }

// Ensure returns the relation for pred, creating it with the given arity
// and partition column if absent. It returns an error if the relation
// exists with another arity; an existing relation keeps its partition
// column (repartitioning is a rebuild, not an Ensure).
func (pdb *PartitionedDatabase) Ensure(pred string, arity, partCol int) (*PartitionedRelation, error) {
	if pr, ok := pdb.rels[pred]; ok {
		if pr.arity != arity {
			return nil, &ArityError{Pred: pred, Want: pr.arity, Got: arity}
		}
		return pr, nil
	}
	pr := NewPartitionedRelation(pred, arity, partCol, pdb.shards)
	pdb.rels[pred] = pr
	return pr, nil
}

// Insert adds a tuple under pred, creating the relation (partitioned by
// column 0) on first use.
func (pdb *PartitionedDatabase) Insert(pred string, t Tuple) error {
	pr, err := pdb.Ensure(pred, len(t), 0)
	if err != nil {
		return err
	}
	pr.Insert(t)
	return nil
}

// Remove deletes a tuple under pred, reporting whether it was present. A
// missing relation or an arity mismatch both report false.
func (pdb *PartitionedDatabase) Remove(pred string, t Tuple) bool {
	pr, ok := pdb.rels[pred]
	if !ok || len(t) != pr.arity {
		return false
	}
	return pr.Remove(t)
}

// Drop removes the relation for pred, if present. Rollback support: a
// canceled batch that created the relation removes it again (see
// ivm.Maintainer).
func (pdb *PartitionedDatabase) Drop(pred string) { delete(pdb.rels, pred) }

// Predicates returns the relation names in sorted order.
func (pdb *PartitionedDatabase) Predicates() []string {
	out := make([]string, 0, len(pdb.rels))
	for p := range pdb.rels {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// BuildIndexes freezes every shard of every relation for concurrent reads.
func (pdb *PartitionedDatabase) BuildIndexes() {
	for _, pr := range pdb.rels {
		pr.BuildIndexes()
	}
}

// TotalTuples returns the number of tuples across all relations.
func (pdb *PartitionedDatabase) TotalTuples() int {
	n := 0
	for _, pr := range pdb.rels {
		n += pr.Len()
	}
	return n
}

// Flatten merges the shards back into an ordinary Database — the logical
// contents the partitioning physically re-bucketed. Differential tests
// compare a flattened partitioned database against its unpartitioned twin.
func (pdb *PartitionedDatabase) Flatten() *Database {
	out := NewDatabase()
	for pred, pr := range pdb.rels {
		nr := NewRelation(pred, pr.arity)
		for _, s := range pr.shards {
			for _, t := range s.Tuples() {
				nr.Insert(t)
			}
		}
		out.rels[pred] = nr
	}
	return out
}
