package aqv_test

import (
	"fmt"

	aqv "repro"
)

// The headline use: rewrite a query to use a materialised view.
func Example() {
	q := aqv.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	view := aqv.MustParseQuery("v(A,B) :- r(A,C), s(C,B)")
	vs := aqv.MustNewViewSet(view)

	rw := aqv.NewRewriter(vs).RewriteOne(q)
	fmt.Println(rw.Query)
	// Output: q(X,Y) :- v(X,Y).
}

// Containment and equivalence of conjunctive queries (Chandra–Merlin).
func ExampleContained() {
	special := aqv.MustParseQuery("q(X) :- e(X,Y), e(Y,Z)")
	general := aqv.MustParseQuery("q(X) :- e(X,Y)")
	fmt.Println(aqv.Contained(special, general))
	fmt.Println(aqv.Contained(general, special))
	// Output:
	// true
	// false
}

// Minimisation removes redundant subgoals (the core of the query).
func ExampleMinimize() {
	q := aqv.MustParseQuery("q(X) :- r(X,Y), r(X,Z), r(X,W)")
	fmt.Println(aqv.Minimize(q))
	// Output: q(X) :- r(X,W).
}

// A maximally-contained rewriting collects every way the views can
// contribute answers.
func ExampleMiniConRewrite() {
	q := aqv.MustParseQuery("q(X) :- r(X,Z), s(Z)")
	vs := aqv.MustNewViewSet(
		aqv.MustParseQuery("v1(A,B) :- r(A,B)"),
		aqv.MustParseQuery("v2(A) :- s(A)"),
	)
	u, _, _ := aqv.MiniConRewrite(q, vs, aqv.MiniConOptions{VerifyCandidates: true})
	fmt.Println(u)
	// Output: q(X) :- v1(X,Z), v2(Z).
}

// Inverse rules reconstruct base relations from view extents using Skolem
// terms for the views' existential variables.
func ExampleInverseRulesProgram() {
	q := aqv.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	views := []*aqv.Query{aqv.MustParseQuery("v(A,B) :- r(A,C), s(C,B)")}
	prog, _ := aqv.InverseRulesProgram(q, views)
	fmt.Println(prog)
	// Output:
	// r(A,f_v_C(A,B)) :- v(A,B).
	// s(f_v_C(A,B),B) :- v(A,B).
	// q(X,Y) :- r(X,Z), s(Z,Y).
}

// Usability: can a view appear in some equivalent rewriting of the query?
func ExampleUsable() {
	q := aqv.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	exposes := aqv.MustParseQuery("v1(A,C) :- r(A,C)")
	hides := aqv.MustParseQuery("v2(A) :- r(A,C)")
	fmt.Println(aqv.Usable(exposes, q))
	fmt.Println(aqv.Usable(hides, q))
	// Output:
	// true
	// false
}

// Evaluating queries over an in-memory database.
func ExampleEvalQuery() {
	db := aqv.NewDatabase()
	prog, _ := aqv.ParseProgram("e(a,b). e(b,c).")
	_ = db.LoadFacts(prog.Facts)
	answers := aqv.EvalQuery(db, aqv.MustParseQuery("q(X,Z) :- e(X,Y), e(Y,Z)"))
	fmt.Println(answers)
	// Output: [[a c]]
}
